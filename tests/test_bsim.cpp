// Physics-path tests: the device equations of Section 3 must reproduce
// the technology trends the paper's argument rests on.

#include <gtest/gtest.h>

#include "power/bsim.hpp"
#include "util/assert.hpp"

namespace scanpower {
namespace {

TEST(Bsim, SubthresholdGrowsExponentiallyAsVtDrops) {
  BsimParams hi;
  BsimParams lo = hi;
  lo.vt0_n = hi.vt0_n - 0.06;  // 60 mV lower threshold
  const double i_hi = bsim_subthreshold_a(hi, 0.0, hi.vdd, 0.0, false);
  const double i_lo = bsim_subthreshold_a(lo, 0.0, lo.vdd, 0.0, false);
  // ~60 mV at n*vt ~ 39 mV -> about e^1.55 ~ 4.7x.
  EXPECT_GT(i_lo / i_hi, 3.0);
  EXPECT_LT(i_lo / i_hi, 8.0);
}

TEST(Bsim, SubthresholdGrowsWithTemperature) {
  BsimParams cold;
  cold.temperature_k = 300.0;
  BsimParams hot = cold;
  hot.temperature_k = 380.0;
  EXPECT_GT(bsim_subthreshold_a(hot, 0.0, hot.vdd, 0.0, false),
            bsim_subthreshold_a(cold, 0.0, cold.vdd, 0.0, false));
}

TEST(Bsim, DiblIncreasesLeakageWithVds) {
  const BsimParams p;
  EXPECT_GT(bsim_subthreshold_a(p, 0.0, 0.9, 0.0, false),
            bsim_subthreshold_a(p, 0.0, 0.45, 0.0, false));
}

TEST(Bsim, BodyBiasSuppressesLeakage) {
  const BsimParams p;
  EXPECT_LT(bsim_subthreshold_a(p, 0.0, 0.9, 0.2, false),
            bsim_subthreshold_a(p, 0.0, 0.9, 0.0, false));
}

TEST(Bsim, NegativeVgsSuppressesLeakage) {
  const BsimParams p;
  EXPECT_LT(bsim_subthreshold_a(p, -0.1, 0.8, 0.1, false),
            bsim_subthreshold_a(p, 0.0, 0.9, 0.0, false));
}

TEST(Bsim, TunnelingGrowsExponentiallyAsOxideThins) {
  BsimParams thick;
  thick.tox_m = 1.6e-9;
  BsimParams thin = thick;
  thin.tox_m = 1.0e-9;
  const double j_thick = bsim_gate_tunneling_a(thick, 0.9, false);
  const double j_thin = bsim_gate_tunneling_a(thin, 0.9, false);
  EXPECT_GT(j_thin / j_thick, 10.0);
}

TEST(Bsim, TunnelingGrowsWithVox) {
  const BsimParams p;
  EXPECT_GT(bsim_gate_tunneling_a(p, 0.9, false),
            bsim_gate_tunneling_a(p, 0.6, false));
  EXPECT_DOUBLE_EQ(bsim_gate_tunneling_a(p, 0.0, false), 0.0);
}

TEST(Bsim, VoxAboveBarrierRejected) {
  const BsimParams p;
  EXPECT_THROW(bsim_gate_tunneling_a(p, p.phi_ox_v + 0.1, false), Error);
}

TEST(Bsim, DerivedParamsHaveTableStructure) {
  const LeakageParams lp = derive_leakage_params(BsimParams{});
  // Stack-position asymmetry (what pin reordering exploits).
  EXPECT_LT(lp.nmos_off_strong, lp.nmos_off_weak);
  EXPECT_LT(lp.pmos_off_strong, lp.pmos_off_weak);
  // Stack factor suppresses.
  EXPECT_LE(lp.nmos_stack_beta, 1.0);
  EXPECT_GT(lp.nmos_stack_beta, 0.0);
  // Everything positive.
  EXPECT_GT(lp.nmos_off_weak, 0.0);
  EXPECT_GT(lp.pmos_off_parallel, 0.0);
  EXPECT_GT(lp.gate_leak_nmos_on, 0.0);
  EXPECT_GT(lp.gate_leak_pmos_on, 0.0);
  // NMOS tunnels more than PMOS (electron vs hole barrier).
  EXPECT_GT(lp.gate_leak_nmos_on, lp.gate_leak_pmos_on);
}

TEST(Bsim, PhysicalModelPreservesReorderingSignal) {
  // The physics-derived tables must keep the "01" vs "10" NAND2 gap that
  // motivates Figure 2 / pin reordering, and the same worst-case states.
  const LeakageModel model = physical_leakage_model();
  const double l01 = model.cell_leakage_na(GateType::Nand, 2, 0b10);  // A=0,B=1
  const double l10 = model.cell_leakage_na(GateType::Nand, 2, 0b01);  // A=1,B=0
  EXPECT_LT(l01, l10);
  const double worst = model.cell_leakage_na(GateType::Nand, 2, 0b11);
  EXPECT_GT(worst, l01);
  EXPECT_GT(worst, model.cell_leakage_na(GateType::Nand, 2, 0b00));
}

TEST(Bsim, PhysicalModelWithinOrderOfMagnitudeOfPaperTable) {
  // Not bit-exact (that is the calibrated table's job), but the physics
  // defaults must land in the right decade for every NAND2 state.
  const LeakageModel model = physical_leakage_model();
  const double paper[4] = {78.0, 264.0, 73.0, 408.0};  // index = pattern
  for (unsigned pat = 0; pat < 4; ++pat) {
    const double l = model.cell_leakage_na(GateType::Nand, 2, pat);
    EXPECT_GT(l, paper[pat] / 10.0) << "pattern " << pat;
    EXPECT_LT(l, paper[pat] * 10.0) << "pattern " << pat;
  }
}

TEST(Bsim, FutureTechnologyShiftsTowardStatic) {
  // The paper's motivation: scaled technologies leak more. Lower V_T and
  // thinner oxide must raise every entry of the NAND2 table.
  BsimParams today;
  BsimParams scaled = today;
  scaled.vt0_n -= 0.05;
  scaled.vt0_p -= 0.05;
  scaled.tox_m = 1.0e-9;
  const LeakageModel m_today = physical_leakage_model(today);
  const LeakageModel m_scaled = physical_leakage_model(scaled);
  for (unsigned pat = 0; pat < 4; ++pat) {
    EXPECT_GT(m_scaled.cell_leakage_na(GateType::Nand, 2, pat),
              m_today.cell_leakage_na(GateType::Nand, 2, pat))
        << "pattern " << pat;
  }
}

}  // namespace
}  // namespace scanpower
