// Response-compaction subsystem: MISR signatures, X-masking, signature
// logs and diagnosis over compacted responses.
//
// Compaction is a linear system with crisp algebraic invariants, so the
// core is guarded by property tests over random responses rather than
// hand-picked examples: linearity (sig(A ^ B) == sig(A) ^ sig(B)),
// packed-vs-scalar equality for every block width, and the aliasing
// probability of the signature. The acceptance criterion mirrors the
// full-response engine's: for every benchgen profile, injecting each of
// 100 sampled detected collapsed faults and diagnosing from the
// MISR-compacted signature log (default width/window) must rank the
// injected fault #1 (ties share a rank) in >= 95% of injections, with
// rankings bit-identical across (block_words, num_threads) in {1,4}x{1,4}.

#include <gtest/gtest.h>

#include <sstream>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "compact/compact_diag.hpp"
#include "compact/misr.hpp"
#include "compact/signature_log.hpp"
#include "compact/xmask.hpp"
#include "diag/response.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

/// Random response matrix with the given shape (invalid high lanes of the
/// final word kept zero, as every real producer guarantees).
ResponseMatrix random_responses(std::size_t num_points,
                                std::size_t num_patterns, Rng& rng) {
  ResponseMatrix m;
  m.num_points = num_points;
  m.num_patterns = num_patterns;
  m.words.resize(num_points * m.words_per_point());
  const std::size_t wpp = m.words_per_point();
  for (std::size_t op = 0; op < num_points; ++op) {
    PatternWord* row = m.row(op);
    for (std::size_t w = 0; w < wpp; ++w) row[w] = rng.next_u64();
    if (num_patterns % 64 != 0 && wpp > 0) {
      row[wpp - 1] &= (PatternWord{1} << (num_patterns % 64)) - 1;
    }
  }
  return m;
}

// ---------- MISR core -------------------------------------------------------

TEST(MisrTest, DefaultPolynomialsAreValid) {
  for (int width : {4, 5, 8, 13, 16, 20, 32, 33, 48, 63, 64}) {
    const std::uint64_t poly = default_misr_poly(width);
    ASSERT_NE(poly, 0u) << width;
    EXPECT_TRUE((poly >> (width - 1)) & 1) << width;  // invertible register
    if (width < 64) EXPECT_EQ(poly >> width, 0u) << width;
    (void)Misr(MisrConfig{.width = width});  // must validate
  }
  EXPECT_THROW(Misr(MisrConfig{.width = 3}), Error);
  EXPECT_THROW(Misr(MisrConfig{.width = 65}), Error);
  EXPECT_THROW(Misr(MisrConfig{.width = 16, .poly = 0x10000}), Error);
  EXPECT_THROW(Misr(MisrConfig{.width = 16, .poly = 0x0001}), Error);
  EXPECT_THROW(Misr(MisrConfig{.window = 0}), Error);
}

// The register transition with the top polynomial bit set is invertible,
// so idle() from distinct states stays distinct.
TEST(MisrTest, StepIsInvertible) {
  const Misr misr(MisrConfig{.width = 8, .window = 4});
  std::vector<std::uint8_t> seen(256, 0);
  for (std::uint64_t s = 0; s < 256; ++s) {
    const std::uint64_t n = misr.step(s);
    ASSERT_LT(n, 256u);
    ASSERT_FALSE(seen[n]) << "step() collision at state " << s;
    seen[n] = 1;
  }
}

// Property: MISR compaction is linear over GF(2). For random response
// pairs A, B with every benchgen profile's response shape,
// sig(A ^ B) == sig(A) ^ sig(B) per window.
TEST(MisrTest, LinearityOverEveryProfileShape) {
  Rng rng(0x11ea5);
  for (const SynthProfile& profile : iscas89_profiles()) {
    const std::size_t num_points = static_cast<std::size_t>(profile.num_po) +
                                   static_cast<std::size_t>(profile.num_ff);
    for (const MisrConfig cfg :
         {MisrConfig{}, MisrConfig{.width = 16, .window = 7}}) {
      const MisrCompactor compactor(cfg, 4);
      const std::size_t num_patterns = 96;
      const ResponseMatrix a = random_responses(num_points, num_patterns, rng);
      const ResponseMatrix b = random_responses(num_points, num_patterns, rng);
      ResponseMatrix axb = a;
      for (std::size_t i = 0; i < axb.words.size(); ++i) {
        axb.words[i] ^= b.words[i];
      }
      const auto sa = compactor.compact(a);
      const auto sb = compactor.compact(b);
      const auto sab = compactor.compact(axb);
      ASSERT_EQ(sa.size(), cfg.num_windows(num_patterns));
      for (std::size_t w = 0; w < sa.size(); ++w) {
        EXPECT_EQ(sab[w], sa[w] ^ sb[w])
            << profile.name << " window " << w << " width " << cfg.width;
      }
    }
  }
}

// Property: the packed bit-sliced engine equals the scalar reference
// register bit-for-bit, for every block width, across awkward shapes
// (window straddling word blocks, partial final windows, num_points not
// a multiple of the register width, width 64).
TEST(MisrTest, PackedMatchesScalarEveryWidth) {
  Rng rng(0xc0ffee);
  const std::size_t shapes[][2] = {
      {26, 96}, {26, 64}, {3, 130}, {80, 17}, {250, 256}, {1, 70}, {40, 1}};
  for (const auto& shape : shapes) {
    const std::size_t num_points = shape[0];
    const std::size_t num_patterns = shape[1];
    const ResponseMatrix m = random_responses(num_points, num_patterns, rng);
    for (const MisrConfig cfg :
         {MisrConfig{}, MisrConfig{.width = 8, .window = 5},
          MisrConfig{.width = 20, .window = 3},
          MisrConfig{.width = 64, .window = 100}}) {
      const Misr misr(cfg);
      const auto ref = misr.compact_scalar(m);
      for (int words : {1, 2, 4, 8}) {
        const MisrCompactor compactor(cfg, words);
        const auto packed = compactor.compact(m);
        ASSERT_EQ(packed, ref)
            << num_points << "x" << num_patterns << " width " << cfg.width
            << " window " << cfg.window << " W=" << words;
      }
    }
  }
}

// Single-bit corruptions can never alias (the register transition is
// invertible, so a lone error bit always leaves a nonzero syndrome) --
// trivially below the 2^-width * 4 bound. Whole-window random
// corruptions measure the real aliasing probability, which must stay
// below the same bound.
TEST(MisrTest, AliasingStaysBelowBound) {
  const int width = 8;  // small register so aliasing is measurable
  const MisrConfig cfg{.width = width, .window = 8};
  const MisrCompactor compactor(cfg, 4);
  const std::size_t num_points = 26;   // s344-like response width
  const std::size_t num_patterns = 8;  // one window
  Rng rng(0xa11a5);

  // By linearity sig(R ^ E) == sig(R) ^ sig(E): an error pattern E
  // aliases iff sig(E) == 0, independent of the response it corrupts.
  const auto alias = [&](const ResponseMatrix& err) {
    return compactor.compact(err)[0] == 0;
  };

  ResponseMatrix err;
  err.num_points = num_points;
  err.num_patterns = num_patterns;
  err.words.assign(num_points * err.words_per_point(), 0);

  // Every single-bit corruption: zero aliases.
  for (std::size_t op = 0; op < num_points; ++op) {
    for (std::size_t p = 0; p < num_patterns; ++p) {
      err.set_bit(op, p);
      EXPECT_FALSE(alias(err)) << "single-bit alias at (" << op << "," << p
                               << ")";
      err.row(op)[p / 64] = 0;
    }
  }

  // Random multi-bit corruptions: measured rate below 4 * 2^-width.
  const int trials = 20000;
  int aliased = 0;
  for (int t = 0; t < trials; ++t) {
    bool nonzero = false;
    for (std::size_t op = 0; op < num_points; ++op) {
      const PatternWord w = rng.next_u64() & ((PatternWord{1} << num_patterns) - 1);
      err.row(op)[0] = w;
      nonzero |= w != 0;
    }
    if (!nonzero) continue;
    if (alias(err)) ++aliased;
  }
  const double bound = 4.0 * static_cast<double>(trials) / 256.0;  // 2^-8
  EXPECT_LT(static_cast<double>(aliased), bound);
}

// ---------- X-masking -------------------------------------------------------

// The mask plan must flag exactly the (point, window) pairs whose
// good-machine value goes X for some pattern of the window -- checked
// against the scalar 3-valued simulator -- and masked points must leave
// the signatures entirely.
TEST(XMaskPlanTest, MatchesScalarTernarySimulation) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  auto pats = random_patterns(nl, 96, 0x3a5);
  // Poke X into a deterministic spread of pattern bits.
  Rng rng(0x77);
  for (TestPattern& p : pats) {
    for (Logic& v : p.pi) {
      if (rng.next_below(8) == 0) v = Logic::X;
    }
    for (Logic& v : p.ppi) {
      if (rng.next_below(16) == 0) v = Logic::X;
    }
  }
  const ObservationPoints points(nl);
  const int window = 8;
  const XMaskPlan plan(nl, points, pats, window, 4);
  ASSERT_TRUE(plan.any_masked());
  EXPECT_EQ(plan.num_windows(), pats.size() / window);

  Simulator sim(nl);
  std::size_t masked_total = 0;
  std::vector<std::uint8_t> x_in_window(points.size() * plan.num_windows(), 0);
  for (std::size_t p = 0; p < pats.size(); ++p) {
    for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
      sim.set_input(nl.inputs()[k], pats[p].pi[k]);
    }
    for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
      sim.set_state(nl.dffs()[c], pats[p].ppi[c]);
    }
    sim.eval();
    for (std::size_t op = 0; op < points.size(); ++op) {
      if (sim.value(points.observed_gate(op)) == Logic::X) {
        x_in_window[op * plan.num_windows() + p / window] = 1;
      }
    }
  }
  for (std::size_t op = 0; op < points.size(); ++op) {
    for (std::size_t w = 0; w < plan.num_windows(); ++w) {
      EXPECT_EQ(plan.masked(op, w),
                x_in_window[op * plan.num_windows() + w] != 0)
          << "op " << op << " window " << w;
      masked_total += plan.masked(op, w);
    }
  }
  EXPECT_EQ(plan.num_masked(), masked_total);

  // Masked points contribute nothing: flipping every response bit of a
  // masked point inside its masked window leaves the signatures unchanged.
  Rng rrng(0x9e);
  ResponseMatrix m = random_responses(points.size(), pats.size(), rrng);
  const MisrCompactor compactor(MisrConfig{.window = window}, 4);
  const auto base = compactor.compact(m, &plan);
  EXPECT_EQ(base, Misr(MisrConfig{.window = window}).compact_scalar(m, &plan));
  bool flipped_any = false;
  for (std::size_t op = 0; op < points.size() && !flipped_any; ++op) {
    for (std::size_t w = 0; w < plan.num_windows(); ++w) {
      if (!plan.masked(op, w)) continue;
      for (std::size_t p = w * window; p < (w + 1) * window; ++p) {
        m.row(op)[p / 64] ^= PatternWord{1} << (p % 64);
      }
      flipped_any = true;
      break;
    }
  }
  ASSERT_TRUE(flipped_any);
  EXPECT_EQ(compactor.compact(m, &plan), base);
}

TEST(XMaskPlanTest, FullySpecifiedPatternsYieldEmptyPlan) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto pats = random_patterns(nl, 32, 1);
  const ObservationPoints points(nl);
  const XMaskPlan plan(nl, points, pats, 8, 1);
  EXPECT_FALSE(plan.any_masked());
  EXPECT_EQ(plan.num_masked(), 0u);
  EXPECT_EQ(plan.keep_row(0), nullptr);
  EXPECT_TRUE(zero_filled_patterns(pats).empty());
}

// ---------- short final windows ---------------------------------------------

// patterns % window != 0 leaves a short final window, and all four
// engines must agree on its semantics: XMaskPlan ceil-counts windows and
// clamps the final range, the scalar Misr and the packed MisrCompactor
// fold only the real patterns of the short window (at every block
// width), and SignatureCapture publishes expected/observed vectors of
// the same ceil length that the diagnoser accepts. A disagreement
// anywhere would silently shift every verdict behind the boundary.
TEST(ShortWindowTest, EnginesAgreeOnPartialFinalWindow) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const ObservationPoints points(nl);
  const auto faults = collapse_faults(nl);
  Rng xr(0x51);
  // (patterns, window) shapes: remainder 1, mid-window remainders,
  // window > patterns (a single short window), and a final window
  // straddling the 64-lane word boundary.
  const std::size_t shapes[][2] = {{91, 12}, {65, 64}, {13, 32},
                                   {96, 7},  {33, 2},  {127, 64}};
  for (const auto& shape : shapes) {
    const std::size_t n = shape[0];
    const int window = static_cast<int>(shape[1]);
    auto pats = random_patterns(nl, static_cast<int>(n), 0xd0 + n);
    // Poke X bits so X-bounding is active inside the short window too.
    for (TestPattern& p : pats) {
      for (Logic& v : p.pi) {
        if (xr.next_below(6) == 0) v = Logic::X;
      }
    }
    const MisrConfig cfg{.width = 16, .window = window};
    const std::size_t nwin = cfg.num_windows(n);
    ASSERT_EQ(nwin, (n + shape[1] - 1) / shape[1]);

    // Identical plans at every block width, ceil window count.
    const XMaskPlan plan1(nl, points, pats, window, 1);
    const XMaskPlan plan4(nl, points, pats, window, 4);
    ASSERT_EQ(plan1.num_windows(), nwin) << n << "/" << window;
    ASSERT_EQ(plan4.num_windows(), nwin);
    ASSERT_EQ(plan1.num_masked(), plan4.num_masked());
    for (std::size_t op = 0; op < points.size(); ++op) {
      for (std::size_t w = 0; w < nwin; ++w) {
        ASSERT_EQ(plan1.masked(op, w), plan4.masked(op, w))
            << n << "/" << window << " op " << op << " window " << w;
      }
    }

    // Scalar register == packed engine under the mask, every width.
    const auto filled = zero_filled_patterns(pats);
    ASSERT_FALSE(filled.empty());
    ResponseCapture rcap(nl, 4);
    const ResponseMatrix good = rcap.capture_good(filled);
    const auto ref = Misr(cfg).compact_scalar(good, &plan1);
    ASSERT_EQ(ref.size(), nwin);
    for (int words : {1, 4, 8}) {
      EXPECT_EQ(MisrCompactor(cfg, words).compact(good, &plan4), ref)
          << n << "/" << window << " W=" << words;
    }

    // SignatureCapture publishes the same shapes end to end, and the
    // diagnoser accepts the log and ranks the injected fault #1. Prefer
    // a fault that actually fails some window (masking can swallow a
    // detection entirely; a clean log still ties every undetected fault
    // at rank 1, so the fallback stays assertable).
    SignatureCapture cap(nl, cfg, 4);
    SignatureLog log;
    std::size_t pick = 0;
    for (std::size_t fi = 0; fi < faults.size(); fi += 29) {
      log = cap.inject(pats, faults[fi]);
      pick = fi;
      if (log.num_failing_windows() > 0) break;
    }
    EXPECT_EQ(log.expected, ref) << n << "/" << window;
    ASSERT_EQ(log.observed.size(), nwin);
    EXPECT_EQ(log.num_patterns, n);
    SignatureDiagnoser diag(nl, DiagnosisOptions{});
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    EXPECT_EQ(res.num_windows, nwin);
    EXPECT_EQ(res.rank_of(faults[pick]), 1u) << n << "/" << window;
  }
}

// ---------- signature logs --------------------------------------------------

TEST(SignatureLogTest, SaveLoadRoundTrip) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  SignatureCapture cap(nl, MisrConfig{}, 4);
  const SignatureLog log = cap.inject(pats, faults[7]);
  ASSERT_GT(log.num_failing_windows(), 0u);

  std::stringstream ss;
  save_signature_log(ss, log);
  const SignatureLog back = load_signature_log(ss);
  EXPECT_EQ(back.circuit, log.circuit);
  EXPECT_EQ(back.num_patterns, log.num_patterns);
  EXPECT_TRUE(back.misr == log.misr);
  EXPECT_EQ(back.expected, log.expected);
  EXPECT_EQ(back.observed, log.observed);
}

TEST(SignatureLogTest, LoadRejectsGarbage) {
  const auto reject = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(load_signature_log(ss), Error) << text;
  };
  reject("patterns 4\n");                                       // no windows
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0\n");                                        // missing window
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0\nsig 0 0 0\n");                             // duplicate
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0\nsig 2 0 0\n");                             // out of range
  reject("patterns 64\nmisr 16 a001 32\nwindows 3\n"
         "sig 0 0 0\nsig 1 0 0\nsig 2 0 0\n");                  // count mismatch
  reject("patterns 64\nmisr 16 10000 32\nwindows 2\n"
         "sig 0 0 0\nsig 1 0 0\n");                             // bad poly
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sug 0 0 0\nsig 1 0 0\n");                             // bad keyword
}

// Hardened ingestion: malformed signature logs are rejected with a typed
// Error naming the offending line and defect, never silently coerced.
TEST(SignatureLogTest, MalformedLogsNameTheOffendingLine) {
  const auto reject = [](const std::string& text, const std::string& expect) {
    std::stringstream ss(text);
    try {
      load_signature_log(ss);
      FAIL() << "accepted: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
          << "error \"" << e.what() << "\" lacks \"" << expect << "\" for:\n"
          << text;
    }
  };
  reject("patterns 64\npatterns 64\n", "line 2");       // duplicate header
  reject("patterns 64\npatterns 64\n", "duplicate");
  reject("misr 16 a001 32\nmisr 16 a001 32\n", "line 2");
  reject("patterns -9\n", "bad pattern count");
  reject("patterns 64\nwindows 2\nsig 0 0 0\n", "line 3");  // sig before misr
  reject("patterns 64\nwindows 2\nsig 0 0 0\n", "before \"misr\"");
  reject("patterns 64\nmisr 16 a001 32\nsig 0 0 0\n", "before \"windows\"");
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 1ffff 0\nsig 1 0 0\n", "line 4");         // sig wider than MISR
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 1ffff 0\nsig 1 0 0\n", "exceeds the 16-bit MISR width");
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0 junk\nsig 1 0 0\n", "line 4");        // trailing garbage
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0 junk\nsig 1 0 0\n", "trailing");
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 1 0 0\n", "window 0 of 2 missing");         // truncation
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0\nsig 5 0 0\n", "out of range");
  reject("patterns 64\nmisr 16 a001 32\nwindows 2\n"
         "sig 0 0 0\nsig 5 0 0\n", "line 5");
}

// Fuzz: random logs survive save -> load -> save with a byte-identical
// second save and structural equality.
TEST(SignatureLogTest, FuzzRoundTripIsByteIdentical) {
  Rng rng(0xf022);
  for (int t = 0; t < 200; ++t) {
    SignatureLog log;
    log.circuit = t % 5 == 0 ? "" : "ckt" + std::to_string(rng.next_below(100));
    log.misr.width = 4 + static_cast<int>(rng.next_below(61));
    log.misr.poly = 0;  // resolved on save
    log.misr.window = 1 + static_cast<int>(rng.next_below(40));
    const std::size_t windows = rng.next_below(20);
    log.num_patterns =
        windows == 0
            ? 0
            : (windows - 1) * static_cast<std::size_t>(log.misr.window) + 1 +
                  rng.next_below(static_cast<std::uint64_t>(log.misr.window));
    const std::uint64_t mask = log.misr.width == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << log.misr.width) - 1;
    for (std::size_t w = 0; w < windows; ++w) {
      log.expected.push_back(rng.next_u64() & mask);
      log.observed.push_back(rng.next_u64() & mask);
    }

    std::stringstream first;
    save_signature_log(first, log);
    const SignatureLog back = load_signature_log(first);
    EXPECT_EQ(back.circuit, log.circuit);
    EXPECT_EQ(back.num_patterns, log.num_patterns);
    EXPECT_TRUE(back.misr == log.misr);
    EXPECT_EQ(back.expected, log.expected);
    EXPECT_EQ(back.observed, log.observed);
    std::stringstream second;
    save_signature_log(second, back);
    EXPECT_EQ(second.str(), first.str());
  }
}

// ---------- synthetic injection ---------------------------------------------

// The injected signature log must equal compacting the full faulty
// response: observed == sig(good ^ diff) window-wise, and expected
// matches the good machine -- cross-checked through the uncompacted
// ResponseCapture.
TEST(SignatureCaptureTest, InjectMatchesFullResponseCompaction) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0xfa11);
  const auto faults = collapse_faults(nl);
  const MisrConfig cfg{.width = 24, .window = 10};
  SignatureCapture scap(nl, cfg, 4);
  ResponseCapture rcap(nl, 4);
  const MisrCompactor compactor(cfg, 4);
  const ResponseMatrix good = rcap.capture_good(pats);

  for (std::size_t fi = 0; fi < faults.size(); fi += 97) {
    const Fault& f = faults[fi];
    const SignatureLog log = scap.inject(pats, f);
    EXPECT_EQ(log.expected, compactor.compact(good));
    ResponseMatrix faulty = good;
    const FailureLog failures = rcap.inject(pats, f);
    for (const Failure& fail : failures.failures) {
      faulty.row(fail.op)[fail.pattern / 64] ^= PatternWord{1}
                                                << (fail.pattern % 64);
    }
    EXPECT_EQ(log.observed, compactor.compact(faulty)) << f.to_string(nl);
  }
}

// ---------- compacted diagnosis ---------------------------------------------

TEST(SignatureDiagnoseTest, RejectsMismatchedLog) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 32, 5);
  SignatureCapture cap(nl, MisrConfig{}, 1);
  SignatureLog log = cap.inject(pats, faults[0]);
  SignatureDiagnoser diag(nl, DiagnosisOptions{.block_words = 1});

  SignatureLog wrong_count = log;
  wrong_count.num_patterns = 31;
  EXPECT_THROW(diag.diagnose(pats, faults, wrong_count), Error);

  // Expected signatures recorded for a different pattern set must be
  // rejected up front instead of silently wrecking every score.
  SignatureLog wrong_expected = log;
  wrong_expected.expected[0] ^= 1;
  EXPECT_THROW(diag.diagnose(pats, faults, wrong_expected), Error);
}

// No failing windows: exact candidates are exactly the faults this
// pattern set cannot detect (nothing else predicts an all-pass log).
TEST(SignatureDiagnoseTest, CleanLogScoresEverythingAsUndetected) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 48, 3);
  SignatureCapture cap(nl, MisrConfig{.window = 16}, 4);
  cap.bind(pats);
  SignatureLog clean;
  clean.circuit = nl.name();
  clean.num_patterns = pats.size();
  clean.misr = cap.config();
  clean.expected = cap.expected();
  clean.observed = cap.expected();

  SignatureDiagnoser diag(nl, DiagnosisOptions{.cone_pruning = false});
  const DiagnosisResult res = diag.diagnose(pats, faults, clean);
  ASSERT_EQ(res.ranked.size(), faults.size());
  EXPECT_EQ(res.num_failing_windows, 0u);
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 1});
  const FaultSimResult det = fsim.run(pats, faults);
  for (const CandidateScore& sc : res.ranked) {
    EXPECT_EQ(sc.exact(), !det.detected[sc.fault_index])
        << sc.fault.to_string(nl);
  }
}

// Pattern sets beyond the good-block cache exercise the streaming
// re-simulation path; rankings must match the cached path bit-for-bit.
TEST(SignatureDiagnoseTest, StreamingGoodMachineMatchesCachedPath) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  // 260 blocks at W=1 (over the 256-block cache cap), 5 blocks at W=8.
  const auto pats = random_patterns(nl, 260 * 64, 0xb10c);
  SignatureCapture cap(nl, MisrConfig{.window = 128}, 4);
  const SignatureLog log = cap.inject(pats, faults[2]);
  ASSERT_GT(log.num_failing_windows(), 0u);

  DiagnosisResult ref;
  bool have_ref = false;
  for (int words : {1, 8}) {
    SignatureDiagnoser d(nl, DiagnosisOptions{.block_words = words,
                                              .cone_pruning = false});
    const DiagnosisResult res = d.diagnose(pats, faults, log);
    EXPECT_EQ(res.rank_of(faults[2]), 1u);
    if (!have_ref) {
      ref = res;
      have_ref = true;
      continue;
    }
    ASSERT_EQ(res.ranked.size(), ref.ranked.size());
    for (std::size_t i = 0; i < ref.ranked.size(); ++i) {
      ASSERT_EQ(res.ranked[i].fault, ref.ranked[i].fault) << "W=" << words;
      ASSERT_EQ(res.ranked[i].tfsf, ref.ranked[i].tfsf);
      ASSERT_EQ(res.ranked[i].tfsp, ref.ranked[i].tfsp);
      ASSERT_EQ(res.ranked[i].tpsf, ref.ranked[i].tpsf);
    }
  }
}

// X-polluted patterns: diagnosis from a compacted log with masked
// windows still ranks the injected fault #1, and the rebuilt mask plan
// matches the tester's.
TEST(SignatureDiagnoseTest, DiagnosesThroughXMasking) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  auto pats = random_patterns(nl, 96, 0xe4e);
  Rng rng(0x5eed);
  for (TestPattern& p : pats) {
    for (Logic& v : p.pi) {
      if (rng.next_below(10) == 0) v = Logic::X;
    }
  }
  const auto faults = collapse_faults(nl);
  SignatureCapture cap(nl, MisrConfig{.window = 8}, 4);
  cap.bind(pats);
  ASSERT_TRUE(cap.mask().any_masked());

  SignatureDiagnoser diag(nl, DiagnosisOptions{});
  int diagnosed = 0;
  for (std::size_t fi = 0; fi < faults.size() && diagnosed < 12; fi += 41) {
    const SignatureLog log = cap.inject(pats, faults[fi]);
    if (log.num_failing_windows() == 0) continue;
    ++diagnosed;
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    EXPECT_EQ(res.rank_of(faults[fi]), 1u) << faults[fi].to_string(nl);
    EXPECT_EQ(res.num_masked, cap.mask().num_masked());
    ASSERT_FALSE(res.ranked.empty());
    EXPECT_TRUE(res.ranked[0].exact());
  }
  EXPECT_GE(diagnosed, 8);
}

// ---------- acceptance: every profile, deterministic, rank-1 ----------------

// For every benchgen profile: inject >= 100 sampled detected collapsed
// faults, diagnose from the MISR-compacted signature log (default
// width/window), and require the injected fault to rank #1 (ties share a
// rank) in >= 95% of injections. Rankings must be bit-identical across
// (block_words, num_threads) in {1,4} x {1,4}.
TEST(CompactDiagnoseAcceptance, AllProfilesRankInjectedFaultFirst) {
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto faults = collapse_faults(nl);
    const int num_patterns = 96;
    const auto pats =
        random_patterns(nl, num_patterns, 0xacce97 + profile.seed);

    FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
    const FaultSimResult det = fsim.run(pats, faults);
    std::vector<std::size_t> detected;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (det.detected[fi]) detected.push_back(fi);
    }
    ASSERT_GE(detected.size(), 100u) << profile.name;

    const std::size_t stride = detected.size() / 100;
    std::vector<std::size_t> sample;
    for (std::size_t i = 0; i < detected.size() && sample.size() < 100;
         i += stride) {
      sample.push_back(detected[i]);
    }

    SignatureCapture cap(nl, MisrConfig{}, 4);  // default width/window
    // All hardware threads: rankings are bit-identical across thread
    // counts (verified below), so this only buys wall-clock.
    SignatureDiagnoser diag(nl,
                            DiagnosisOptions{.block_words = 4, .num_threads = 0});
    int trials = 0;
    int rank1 = 0;
    for (std::size_t fi : sample) {
      const SignatureLog log = cap.inject(pats, faults[fi]);
      ASSERT_GT(log.num_failing_windows(), 0u) << profile.name;
      const DiagnosisResult res = diag.diagnose(pats, faults, log);
      const std::size_t rank = res.rank_of(faults[fi]);
      ASSERT_GE(rank, 1u) << profile.name << ": injected fault pruned away";
      ++trials;
      if (rank == 1) ++rank1;
    }
    EXPECT_GE(trials, 100);
    EXPECT_GE(rank1 * 100, trials * 95)
        << profile.name << ": " << rank1 << "/" << trials;

    // Bit-identical rankings across engine configurations on a subset.
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t fi = sample[sample.size() / 5 * trial];
      const SignatureLog log = cap.inject(pats, faults[fi]);
      DiagnosisResult ref;
      bool have_ref = false;
      for (int words : {1, 4}) {
        for (int threads : {1, 4}) {
          SignatureDiagnoser d(nl, DiagnosisOptions{.block_words = words,
                                                    .num_threads = threads});
          const DiagnosisResult res = d.diagnose(pats, faults, log);
          if (!have_ref) {
            ref = res;
            have_ref = true;
            continue;
          }
          ASSERT_EQ(res.ranked.size(), ref.ranked.size()) << profile.name;
          for (std::size_t i = 0; i < ref.ranked.size(); ++i) {
            ASSERT_EQ(res.ranked[i].fault, ref.ranked[i].fault)
                << profile.name << " W=" << words << " T=" << threads;
            ASSERT_EQ(res.ranked[i].tfsf, ref.ranked[i].tfsf);
            ASSERT_EQ(res.ranked[i].tfsp, ref.ranked[i].tfsp);
            ASSERT_EQ(res.ranked[i].tpsf, ref.ranked[i].tpsf);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace scanpower
