#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "benchgen/benchgen.hpp"
#include "core/dont_care_fill.hpp"
#include "core/find_pattern.hpp"
#include "core/justify.hpp"
#include "core/pin_reorder.hpp"
#include "core/verify.hpp"
#include "netlist/builder.hpp"
#include "power/observability.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<bool> all_sources_controllable(const Netlist& nl) {
  std::vector<bool> c(nl.num_gates(), false);
  for (GateId pi : nl.inputs()) c[pi] = true;
  for (GateId ff : nl.dffs()) c[ff] = true;
  return c;
}

std::vector<bool> pis_only(const Netlist& nl) {
  std::vector<bool> c(nl.num_gates(), false);
  for (GateId pi : nl.inputs()) c[pi] = true;
  return c;
}

// ---------- Justifier --------------------------------------------------------

TEST(Justify, SimpleObjective) {
  NetlistBuilder b("j");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_output("g");
  const Netlist nl = b.link();
  Justifier j(nl, all_sources_controllable(nl));
  EXPECT_TRUE(j.justify(nl.find("g"), false));  // needs a=c=1
  EXPECT_EQ(j.value(nl.find("a")), Logic::One);
  EXPECT_EQ(j.value(nl.find("c")), Logic::One);
}

TEST(Justify, CommitsAreCumulative) {
  NetlistBuilder b("j");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::And, "g1", {"a", "c"});
  b.add_gate(GateType::Or, "g2", {"a", "c"});
  b.add_output("g1");
  b.add_output("g2");
  const Netlist nl = b.link();
  Justifier j(nl, all_sources_controllable(nl));
  ASSERT_TRUE(j.justify(nl.find("g1"), true));  // forces a=1, c=1
  // Now g2=0 requires a=0: must fail without disturbing commitments.
  EXPECT_FALSE(j.justify(nl.find("g2"), false));
  EXPECT_EQ(j.value(nl.find("g1")), Logic::One);
  EXPECT_EQ(j.value(nl.find("a")), Logic::One);
}

TEST(Justify, FailureRestoresState) {
  NetlistBuilder b("j");
  b.add_input("a");
  b.add_gate(GateType::Not, "n", {"a"});
  b.add_gate(GateType::And, "g", {"a", "n"});  // g == 0 always
  b.add_output("g");
  const Netlist nl = b.link();
  Justifier j(nl, all_sources_controllable(nl));
  EXPECT_FALSE(j.justify(nl.find("g"), true));
  // Nothing committed.
  EXPECT_EQ(j.assignment()[nl.find("a")], Logic::X);
  EXPECT_TRUE(j.justify(nl.find("g"), false));
}

TEST(Justify, NonControlledSourcesStayX) {
  const Netlist nl = make_s27();
  Justifier j(nl, pis_only(nl));
  for (GateId ff : nl.dffs()) {
    EXPECT_EQ(j.value(ff), Logic::X);
    EXPECT_FALSE(j.can_control(ff));
  }
}

TEST(Justify, RespectsPreset) {
  NetlistBuilder b("j");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::And, "g", {"a", "c"});
  b.add_output("g");
  const Netlist nl = b.link();
  Justifier j(nl, all_sources_controllable(nl));
  j.preset(nl.find("a"), false);
  EXPECT_FALSE(j.justify(nl.find("g"), true));  // a=0 blocks AND=1
  EXPECT_TRUE(j.justify(nl.find("g"), false));
  EXPECT_THROW(j.preset(nl.find("a"), true), Error);  // contradiction
}

TEST(Justify, XorObjectivesSolvedViaBacktracking) {
  NetlistBuilder b("jx");
  b.add_input("a");
  b.add_input("c");
  b.add_input("d");
  b.add_gate(GateType::Xor, "x1", {"a", "c"});
  b.add_gate(GateType::Xor, "x2", {"x1", "d"});
  b.add_output("x2");
  const Netlist nl = b.link();
  for (bool target : {false, true}) {
    Justifier j(nl, all_sources_controllable(nl));
    ASSERT_TRUE(j.justify(nl.find("x2"), target));
    EXPECT_EQ(j.value(nl.find("x2")), from_bool(target));
  }
}

TEST(Justify, DirectiveSteersChoice) {
  // g = NAND(a, c): justifying g=1 needs one 0. Observability makes the
  // preferred choice deterministic: cv=0 -> "target_value false" -> choose
  // max observability.
  NetlistBuilder b("jd");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_output("g");
  const Netlist nl = b.link();
  std::vector<double> obs(nl.num_gates(), 0.0);
  obs[nl.find("a")] = 10.0;   // prefers 0 strongly
  obs[nl.find("c")] = -10.0;  // prefers 1
  const ObservabilityDirective dir(obs);
  Justifier j(nl, all_sources_controllable(nl), &dir);
  ASSERT_TRUE(j.justify(nl.find("g"), true));
  EXPECT_EQ(j.value(nl.find("a")), Logic::Zero);  // max obs chosen for 0
  EXPECT_EQ(j.assignment()[nl.find("c")], Logic::X);
}

// ---------- FindControlledInputPattern ------------------------------------------

TEST(FindPattern, FullControlBlocksEverything) {
  // All cells multiplexed: no transition sources at all.
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  MuxPlan plan;
  plan.multiplexed.assign(nl.dffs().size(), true);
  const CapacitanceModel caps;
  const FindPatternResult r = find_controlled_input_pattern(nl, plan, caps);
  EXPECT_EQ(r.transition_lines, 0u);
  EXPECT_EQ(r.gates_propagated, 0u);
}

TEST(FindPattern, NoMuxesStillBlocksSomeGates) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  MuxPlan plan;
  plan.multiplexed.assign(nl.dffs().size(), false);
  const CapacitanceModel caps;
  const FindPatternResult r = find_controlled_input_pattern(nl, plan, caps);
  EXPECT_GT(r.gates_blocked, 0u);
  // Non-muxed pseudo-inputs are transition sources.
  for (GateId ff : nl.dffs()) {
    EXPECT_TRUE(r.transition_nodes[ff]);
  }
}

TEST(FindPattern, TransitionMarksConsistentWithBlocking) {
  // Invariant: a gate whose side input carries a settled controlling
  // value must not be marked transitioning.
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  const CapacitanceModel caps;
  const FindPatternResult r = find_controlled_input_pattern(nl, plan, caps);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!r.transition_nodes[id]) continue;
    const GateType t = nl.type(id);
    if (!is_combinational(t)) continue;
    const auto cv = controlling_value(t);
    if (!cv) continue;
    for (GateId f : nl.fanins(id)) {
      if (r.transition_nodes[f]) continue;
      EXPECT_NE(r.implied_values[f], from_bool(*cv))
          << nl.gate_name(id) << " marked transitioning despite a settled "
          << "controlling side input " << nl.gate_name(f);
    }
  }
}

TEST(FindPattern, MuxedCellsNeverTransitionSources) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s444"));
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  const CapacitanceModel caps;
  const FindPatternResult r = find_controlled_input_pattern(nl, plan, caps);
  for (std::size_t i = 0; i < plan.multiplexed.size(); ++i) {
    if (plan.multiplexed[i]) {
      EXPECT_FALSE(r.transition_nodes[nl.dffs()[i]]);
    }
  }
}

TEST(FindPattern, ObservabilityDirectiveKeepsResultsWellFormed) {
  // The directive changes *which* blocking vector is found (and therefore
  // which gates ever reach the TGS), but both runs must produce
  // well-formed, internally consistent results.
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  const CapacitanceModel caps;
  const LeakageModel leak;
  const LeakageObservability obs(nl, leak);
  FindPatternOptions with;
  with.observability = &obs.values();
  for (const FindPatternResult& r :
       {find_controlled_input_pattern(nl, plan, caps, with),
        find_controlled_input_pattern(nl, plan, caps)}) {
    EXPECT_EQ(r.pi_pattern.size(), nl.inputs().size());
    EXPECT_EQ(r.mux_pattern.size(), nl.dffs().size());
    EXPECT_GT(r.gates_blocked, 0u);
    EXPECT_EQ(r.transition_lines,
              static_cast<std::size_t>(std::count(r.transition_nodes.begin(),
                                                  r.transition_nodes.end(),
                                                  true)));
  }
}

// ---------- don't-care filling ----------------------------------------------------

TEST(Fill, MinimizationNeverWorseThanFirstTry) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const LeakageModel leak;
  MuxPlan plan;
  plan.multiplexed.assign(nl.dffs().size(), false);
  const CapacitanceModel caps;
  FindPatternResult r = find_controlled_input_pattern(nl, plan, caps);
  const FillResult f = fill_dont_cares_min_leakage(
      nl, leak, r.pi_pattern, r.mux_pattern, plan.multiplexed);
  EXPECT_LE(f.best_leakage_na, f.first_leakage_na + 1e-9);
  for (Logic v : r.pi_pattern) EXPECT_NE(v, Logic::X);
}

TEST(Fill, EligibleMaskRespected) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  std::vector<Logic> pi(nl.inputs().size(), Logic::X);
  std::vector<Logic> mux(nl.dffs().size(), Logic::X);
  std::vector<bool> eligible(nl.dffs().size(), false);
  eligible[0] = true;
  fill_dont_cares_min_leakage(nl, leak, pi, mux, eligible);
  EXPECT_NE(mux[0], Logic::X);
  for (std::size_t i = 1; i < mux.size(); ++i) {
    EXPECT_EQ(mux[i], Logic::X);  // non-eligible cells untouched
  }
}

TEST(Fill, NoFreeInputsIsNoop) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  std::vector<Logic> pi(nl.inputs().size(), Logic::Zero);
  std::vector<Logic> mux(nl.dffs().size(), Logic::X);
  std::vector<bool> eligible(nl.dffs().size(), false);
  const FillResult f = fill_dont_cares_min_leakage(nl, leak, pi, mux, eligible);
  EXPECT_EQ(f.free_inputs, 0u);
  EXPECT_GT(f.best_leakage_na, 0.0);
}

TEST(Fill, DeterministicForFixedSeed) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const LeakageModel leak;
  std::vector<bool> eligible(nl.dffs().size(), true);
  std::vector<Logic> pi1(nl.inputs().size(), Logic::X);
  std::vector<Logic> mux1(nl.dffs().size(), Logic::X);
  auto pi2 = pi1;
  auto mux2 = mux1;
  fill_dont_cares_min_leakage(nl, leak, pi1, mux1, eligible);
  fill_dont_cares_min_leakage(nl, leak, pi2, mux2, eligible);
  EXPECT_EQ(pi1, pi2);
  EXPECT_EQ(mux1, mux2);
}

// ---------- pin reordering ---------------------------------------------------------

TEST(Reorder, Nand2PicksCheapPinAssignment) {
  // g = NAND(a, c) with a=1, c=0 -> pattern "10" (264 nA). Swapping pins
  // gives "01" (73 nA).
  NetlistBuilder b("r");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_output("g");
  Netlist nl = b.link();
  const LeakageModel leak;
  std::vector<Logic> vals(nl.num_gates(), Logic::X);
  vals[nl.find("a")] = Logic::One;
  vals[nl.find("c")] = Logic::Zero;
  vals[nl.find("g")] = Logic::One;
  const ReorderResult r = reorder_pins_for_leakage(nl, leak, vals);
  EXPECT_EQ(r.gates_permuted, 1u);
  EXPECT_DOUBLE_EQ(r.leakage_before_na, 264.0);
  EXPECT_DOUBLE_EQ(r.leakage_after_na, 73.0);
  // Pin 0 now reads the zero-valued input c.
  EXPECT_EQ(nl.fanins(nl.find("g"))[0], nl.find("c"));
}

TEST(Reorder, PreservesFunction) {
  Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const Netlist before = nl;
  const LeakageModel leak;
  // Arbitrary scan values: all X except PIs at 0.
  std::vector<Logic> vals(nl.num_gates(), Logic::X);
  Simulator sv(nl);
  for (GateId pi : nl.inputs()) sv.set_input(pi, Logic::Zero);
  sv.eval();
  reorder_pins_for_leakage(nl, leak, sv.values());

  Simulator sa(before);
  Simulator sb(nl);
  Rng rng(91);
  for (int v = 0; v < 128; ++v) {
    for (std::size_t k = 0; k < before.inputs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_input(before.inputs()[k], val);
      sb.set_input(nl.inputs()[k], val);
    }
    for (std::size_t k = 0; k < before.dffs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_state(before.dffs()[k], val);
      sb.set_state(nl.dffs()[k], val);
    }
    sa.eval_incremental();
    sb.eval_incremental();
    for (std::size_t k = 0; k < before.outputs().size(); ++k) {
      ASSERT_EQ(sa.value(before.outputs()[k]), sb.value(nl.outputs()[k]));
    }
  }
}

TEST(Reorder, NeverIncreasesExpectedLeakage) {
  Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s444"));
  const LeakageModel leak;
  Simulator sv(nl);
  Rng rng(93);
  for (GateId pi : nl.inputs()) sv.set_input(pi, from_bool(rng.next_bool()));
  // DFFs X: scan-mode expectation.
  sv.eval();
  const double before = leak.circuit_leakage_na(nl, sv.values());
  const ReorderResult r = reorder_pins_for_leakage(nl, leak, sv.values());
  // Values are unchanged by a symmetric-gate pin permutation.
  const double after = leak.circuit_leakage_na(nl, sv.values());
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(before - after, r.saved_na(), 1e-6);
}

TEST(Reorder, IdempotentSecondPassDoesNothing) {
  Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const LeakageModel leak;
  Simulator sv(nl);
  for (GateId pi : nl.inputs()) sv.set_input(pi, Logic::One);
  sv.eval();
  reorder_pins_for_leakage(nl, leak, sv.values());
  const ReorderResult second = reorder_pins_for_leakage(nl, leak, sv.values());
  EXPECT_EQ(second.gates_permuted, 0u);
}

// ---------- structure verification -------------------------------------------------

TEST(Verify, S27StructurePassesAllChecks) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  std::vector<Logic> mux_values(nl.dffs().size(), Logic::X);
  for (std::size_t i = 0; i < plan.multiplexed.size(); ++i) {
    if (plan.multiplexed[i]) mux_values[i] = Logic::Zero;
  }
  const StructureVerification v =
      verify_mux_structure(nl, plan, mux_values, model);
  EXPECT_TRUE(v.critical_delay_unchanged)
      << v.critical_delay_before_ps << " -> " << v.critical_delay_after_ps;
  EXPECT_TRUE(v.normal_mode_equivalent);
  EXPECT_TRUE(v.scan_mode_constants_ok);
  EXPECT_TRUE(v.all_ok());
}

}  // namespace
}  // namespace scanpower
