// Degenerate-netlist regressions for the packed engines.
//
// The cross-check suites all run on the benchgen ISCAS-like profiles --
// hundreds of gates, healthy logic depth. The packed engines' edge cases
// live at the other end: a single gate, a primary input wired straight
// to an output (no combinational logic in the cone at all), and a
// DFF-only shift structure (every observation point reads a source).
// Each shape goes through FaultSimulator, PackedLeakageEvaluator and
// Diagnoser (plus the compacted SignatureDiagnoser) and is cross-checked
// against the scalar reference engines.

#include <gtest/gtest.h>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "compact/compact_diag.hpp"
#include "compact/signature_log.hpp"
#include "diag/diagnose.hpp"
#include "diag/response.hpp"
#include "netlist/builder.hpp"
#include "power/leakage_model.hpp"
#include "power/packed_leakage.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

/// One primary input driving a single inverter into the only output.
Netlist single_gate_netlist() {
  NetlistBuilder b("one_gate");
  b.add_input("a");
  b.add_gate(GateType::Not, "y", {"a"});
  b.add_output("y");
  return b.link();
}

/// A primary input marked directly as a primary output: the observation
/// point reads a source gate, with no combinational logic anywhere.
Netlist po_from_pi_netlist() {
  NetlistBuilder b("wire");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Not, "y", {"b"});  // keep one logic gate elsewhere
  b.add_output("a");
  b.add_output("y");
  return b.link();
}

/// Pure shift structure: PI -> DFF -> DFF -> PO, no combinational gates.
Netlist all_dff_netlist() {
  NetlistBuilder b("shift3");
  b.add_input("si");
  b.add_gate(GateType::Dff, "q1", {"si"});
  b.add_gate(GateType::Dff, "q2", {"q1"});
  b.add_gate(GateType::Dff, "q3", {"q2"});
  b.add_output("q3");
  return b.link();
}

/// Per-pattern scalar fault simulation: does injecting `f` change any
/// observable value (PO or DFF D capture) under `pat`?
bool scalar_detects(const Netlist& nl, const TestPattern& pat, const Fault& f) {
  ResponseCapture cap(nl, 1);
  const std::vector<TestPattern> one{pat};
  return !cap.inject(one, f).failures.empty();
}

class DegenerateNetlistTest : public ::testing::TestWithParam<int> {
 protected:
  Netlist make() const {
    switch (GetParam()) {
      case 0: return single_gate_netlist();
      case 1: return po_from_pi_netlist();
      default: return all_dff_netlist();
    }
  }
};

// Fault simulation: every (block width, thread count) configuration must
// agree with per-pattern scalar injection on every collapsed fault.
TEST_P(DegenerateNetlistTest, FaultSimulatorMatchesScalarInjection) {
  const Netlist nl = make();
  const auto faults = collapse_faults(nl);
  ASSERT_FALSE(faults.empty());
  const auto pats = random_patterns(nl, 70, 0xde9 + GetParam());

  std::vector<bool> expect(faults.size(), false);
  std::vector<std::size_t> expect_first(faults.size(),
                                        FaultSimResult::kNotDetected);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    for (std::size_t p = 0; p < pats.size(); ++p) {
      if (scalar_detects(nl, pats[p], faults[fi])) {
        expect[fi] = true;
        expect_first[fi] = p;
        break;
      }
    }
  }

  for (int words : {1, 4}) {
    for (int threads : {1, 4}) {
      FaultSimulator fsim(
          nl, FaultSimOptions{.block_words = words, .num_threads = threads});
      const FaultSimResult res = fsim.run(pats, faults);
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        EXPECT_EQ(res.detected[fi], expect[fi])
            << faults[fi].to_string(nl) << " W=" << words << " T=" << threads;
        EXPECT_EQ(res.detecting_pattern[fi], expect_first[fi])
            << faults[fi].to_string(nl);
      }
    }
  }
}

// Packed leakage: per-lane totals must equal the scalar walk even when
// the circuit has one leaking gate -- or none at all.
TEST_P(DegenerateNetlistTest, PackedLeakageMatchesScalar) {
  const Netlist nl = make();
  const LeakageModel model;
  const GateLeakageTables tables(nl, model);
  const PackedLeakageEvaluator leval(nl, tables);
  const auto pats = random_patterns(nl, 64, 0x1ea5);

  BlockSimulator sim(nl, 1);
  load_pattern_block(nl, pats, 0, sim);
  sim.eval();
  std::vector<double> leak(sim.lanes());
  leval.eval(sim, leak);

  Simulator ssim(nl);
  for (std::size_t p = 0; p < pats.size(); ++p) {
    for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
      ssim.set_input(nl.inputs()[k], pats[p].pi[k]);
    }
    for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
      ssim.set_state(nl.dffs()[c], pats[p].ppi[c]);
    }
    ssim.eval();
    EXPECT_DOUBLE_EQ(leak[p], model.circuit_leakage_na(nl, ssim.values()))
        << "lane " << p;
  }
}

// Diagnosis (full-response and compacted): injecting any detected fault
// must rank it #1, for every engine configuration.
TEST_P(DegenerateNetlistTest, DiagnosisRanksInjectedFaultFirst) {
  const Netlist nl = make();
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 48, 0xd1a + GetParam());
  ResponseCapture cap(nl, 4);
  SignatureCapture scap(nl, MisrConfig{.width = 16, .window = 8}, 4);

  int diagnosed = 0;
  for (const Fault& f : faults) {
    const FailureLog log = cap.inject(pats, f);
    const SignatureLog slog = scap.inject(pats, f);
    EXPECT_EQ(log.failures.empty(), slog.num_failing_windows() == 0)
        << f.to_string(nl);
    if (log.failures.empty()) continue;
    ++diagnosed;
    for (int words : {1, 4}) {
      for (int threads : {1, 4}) {
        const DiagnosisOptions opts{.block_words = words,
                                    .num_threads = threads};
        Diagnoser diag(nl, opts);
        const DiagnosisResult res = diag.diagnose(pats, faults, log);
        EXPECT_EQ(res.rank_of(f), 1u)
            << f.to_string(nl) << " W=" << words << " T=" << threads;
        ASSERT_FALSE(res.ranked.empty());
        EXPECT_TRUE(res.ranked[0].exact());

        SignatureDiagnoser sdiag(nl, opts);
        const DiagnosisResult sres = sdiag.diagnose(pats, faults, slog);
        EXPECT_EQ(sres.rank_of(f), 1u)
            << "compacted " << f.to_string(nl) << " W=" << words;
        ASSERT_FALSE(sres.ranked.empty());
        EXPECT_TRUE(sres.ranked[0].exact());
      }
    }
  }
  EXPECT_GT(diagnosed, 0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DegenerateNetlistTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return "SingleGate";
                             case 1: return "PoDirectlyFromPi";
                             default: return "AllDff";
                           }
                         });

}  // namespace
}  // namespace scanpower
