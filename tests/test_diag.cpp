// Diagnosis engine: response capture, failure logs, candidate ranking.
//
// The acceptance criterion for the subsystem: injecting any detected
// collapsed fault and diagnosing from its synthetic failure log must rank
// that fault #1 (ties share a rank -- candidates indistinguishable under
// the applied patterns), with bit-identical rankings across every
// (block width, thread count) configuration.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "diag/diagnose.hpp"
#include "diag/response.hpp"
#include "netlist/builder.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

// ---------- observation points ----------------------------------------------

TEST(ObservationPointsTest, IndexSpaceCoversPosAndCells) {
  const Netlist nl = make_s27();
  const ObservationPoints ops(nl);
  ASSERT_EQ(ops.size(), nl.outputs().size() + nl.dffs().size());
  ASSERT_EQ(ops.num_pos(), nl.outputs().size());
  for (std::size_t op = 0; op < ops.num_pos(); ++op) {
    EXPECT_FALSE(ops.is_dff_capture(op));
    EXPECT_EQ(ops.observed_gate(op), nl.outputs()[op]);
  }
  for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
    const std::size_t op = ops.num_pos() + c;
    EXPECT_TRUE(ops.is_dff_capture(op));
    EXPECT_EQ(ops.dff_gate(op), nl.dffs()[c]);
    EXPECT_EQ(ops.observed_gate(op), nl.fanins(nl.dffs()[c])[0]);
    EXPECT_EQ(ops.point_of_dff(nl.dffs()[c]), op);
  }
  // Every observation point appears exactly once in its gate's point list.
  std::size_t total = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    total += ops.points_of_gate(g).size();
  }
  EXPECT_EQ(total, ops.size());
}

// ---------- good-machine signatures -----------------------------------------

// Signature bits must equal the scalar per-pattern responses, regardless
// of block width.
TEST(ResponseCaptureTest, GoodSignaturesMatchScalarSimAllWidths) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 100, 0xd1a6);
  const ResponseCapture ref_cap(nl, 1);
  ResponseCapture cap1(nl, 1);
  const ResponseMatrix ref = cap1.capture_good(pats);
  ASSERT_EQ(ref.num_points, ref_cap.points().size());
  ASSERT_EQ(ref.num_patterns, pats.size());

  for (int words : {2, 4, 8}) {
    ResponseCapture cap(nl, words);
    const ResponseMatrix m = cap.capture_good(pats);
    EXPECT_EQ(m.words, ref.words) << "W=" << words;
  }

  // Spot-check against PackedSimulator lanes.
  PackedSimulator sim(nl);
  load_pattern_block(nl, pats, 0, sim);
  sim.eval();
  const ObservationPoints& ops = cap1.points();
  for (std::size_t op = 0; op < ops.size(); ++op) {
    for (std::size_t p = 0; p < 64; ++p) {
      const bool expect = (sim.value(ops.observed_gate(op)) >> p) & 1;
      EXPECT_EQ(ref.bit(op, p), expect);
    }
  }
}

// ---------- synthetic failure logs ------------------------------------------

// An injected fault's failure log must agree with brute force: simulate
// the faulty circuit per pattern and diff the observable responses.
TEST(ResponseCaptureTest, InjectMatchesBruteForce) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 70, 0xfa11);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  ResponseCapture cap_w1(nl, 1);

  // A spread of faults, including DFF-related sites.
  for (std::size_t fi = 0; fi < faults.size(); fi += 97) {
    const Fault& f = faults[fi];
    const FailureLog log = cap.inject(pats, f);
    EXPECT_EQ(cap_w1.inject(pats, f).failures, log.failures)
        << "W=1 vs W=4 for " << f.to_string(nl);

    // Brute force via single-lane packed sim with the fault applied as a
    // one-pattern block.
    std::vector<Failure> expect;
    FaultConeEvaluator ev;
    ev.init(nl, 1);
    BlockSimulator good(nl, 1);
    const ObservationPoints& ops = cap.points();
    for (std::size_t p = 0; p < pats.size(); ++p) {
      load_pattern_block(nl, std::span(pats).subspan(p, 1), 0, good);
      good.eval();
      const PackedBlock<1> mask = lane_validity_mask<1>(1);
      const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
      ev.propagate<1>(good, f, mask, ops.observable(),
                      [&](GateId gate, const PatternWord* diff) {
                        if ((diff[0] & 1) == 0) return;
                        if (d_branch && gate == f.gate) {
                          expect.push_back(
                              {static_cast<std::uint32_t>(p),
                               static_cast<std::uint32_t>(
                                   ops.point_of_dff(gate))});
                        } else {
                          for (std::uint32_t op : ops.points_of_gate(gate)) {
                            expect.push_back(
                                {static_cast<std::uint32_t>(p), op});
                          }
                        }
                      });
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(log.failures, expect) << f.to_string(nl);
  }
}

// A stem fault on a DFF's Q net must be reported at the observation
// points that *read* Q (the downstream capture point, the Q net's PO
// point) -- not at the DFF's own capture point, which observes its D
// driver. Only D-branch faults belong to the cell's own capture point.
TEST(ResponseCaptureTest, DffStemFaultReportsAtConsumingPoints) {
  NetlistBuilder b("shift2");
  b.add_input("a");
  b.add_gate(GateType::Dff, "q1", {"a"});
  b.add_gate(GateType::Dff, "q2", {"q1"});
  b.add_output("q1");  // Q1 is both a PO and DFF2's D driver
  b.add_output("q2");
  const Netlist nl = b.link();
  const GateId q1 = nl.find("q1");
  const GateId q2 = nl.find("q2");

  ResponseCapture cap(nl, 1);
  const ObservationPoints& ops = cap.points();
  const std::size_t po_q1 = 0;  // outputs() order: q1, q2
  const std::size_t cap_q1 = ops.point_of_dff(q1);
  const std::size_t cap_q2 = ops.point_of_dff(q2);

  // One pattern with q1 = 1: the q1/sa0 stem fault is excited and must
  // fail exactly at PO(q1) and q2's capture point.
  TestPattern pat;
  pat.pi = {Logic::One};
  pat.ppi = {Logic::One, Logic::Zero};
  const std::vector<TestPattern> pats{pat};
  const FailureLog stem = cap.inject(pats, Fault{q1, -1, false});
  const std::vector<Failure> expect_stem = {
      {0, static_cast<std::uint32_t>(po_q1)},
      {0, static_cast<std::uint32_t>(cap_q2)}};
  EXPECT_EQ(stem.failures, expect_stem);

  // The D-branch fault on q1 (driver a = 1, forced 0) fails only at q1's
  // own capture point.
  const FailureLog branch = cap.inject(pats, Fault{q1, 0, false});
  const std::vector<Failure> expect_branch = {
      {0, static_cast<std::uint32_t>(cap_q1)}};
  EXPECT_EQ(branch.failures, expect_branch);

  // And diagnosis from the stem log scores the stem fault as exact.
  Diagnoser diag(nl, DiagnosisOptions{.block_words = 1});
  const auto faults = collapse_faults(nl);
  const DiagnosisResult res = diag.diagnose(pats, faults, stem);
  EXPECT_EQ(res.rank_of(Fault{q1, -1, false}), 1u);
  ASSERT_FALSE(res.ranked.empty());
  EXPECT_TRUE(res.ranked[0].exact());
}

TEST(DiagnoseTest, RejectsUnsortedLog) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 8, 5);
  Diagnoser diag(nl, DiagnosisOptions{});
  FailureLog log;
  log.num_patterns = pats.size();
  log.failures = {{3, 0}, {1, 0}};
  EXPECT_THROW(diag.diagnose(pats, faults, log), Error);
  log.normalize();
  const DiagnosisResult res = diag.diagnose(pats, faults, log);
  EXPECT_EQ(res.num_failures, 2u);
}

TEST(FailureLogTest, SaveLoadRoundTrip) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 40, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  FailureLog log = cap.inject(pats, faults[7]);
  ASSERT_FALSE(log.failures.empty());

  std::stringstream ss;
  save_failure_log(ss, log, &nl, &cap.points());
  const FailureLog back = load_failure_log(ss);
  EXPECT_EQ(back.circuit, log.circuit);
  EXPECT_EQ(back.num_patterns, log.num_patterns);
  EXPECT_EQ(back.failures, log.failures);
}

TEST(FailureLogTest, LoadRejectsGarbage) {
  std::stringstream ss("patterns 4\nflail 1 2\n");
  EXPECT_THROW(load_failure_log(ss), Error);
}

// Hardened ingestion: every malformed log is rejected with a typed Error
// naming the offending line, so a tester-transfer glitch points at the
// exact byte range instead of silently skewing the diagnosis.
TEST(FailureLogTest, MalformedLogsNameTheOffendingLine) {
  const auto reject = [](const std::string& text, const std::string& expect) {
    std::stringstream ss(text);
    try {
      load_failure_log(ss);
      FAIL() << "accepted: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
          << "error \"" << e.what() << "\" lacks \"" << expect << "\" for:\n"
          << text;
    }
  };
  // Each expectation pins both the line number and the diagnostic text.
  reject("fail 0 1\n", "line 1");                      // fail before patterns
  reject("fail 0 1\n", "before the patterns header");
  reject("patterns 4\npatterns 4\nend 0\n", "line 2");  // duplicate header
  reject("patterns 4\npatterns 4\nend 0\n", "duplicate");
  reject("patterns -3\n", "bad pattern count");         // signed count
  reject("patterns 4\nfail 9 0\nend 1\n", "line 2");    // pattern out of range
  reject("patterns 4\nfail 9 0\nend 1\n", "out of range");
  reject("patterns 4\nfail 1x 0\nend 1\n", "bad pattern index \"1x\"");
  reject("patterns 4\nfail 1 2abc\nend 1\n", "line 2");  // non-numeric point
  reject("patterns 4\nfail 1 2 3 4\nend 1\n", "trailing");  // extra token
  reject("patterns 4\nfail 1 2\nfail 1 2\nend 2\n", "line 3");  // duplicate rec
  reject("patterns 4\nfail 1 2\nfail 1 2\nend 2\n", "duplicate failure record");
  reject("patterns 4\nfail 1 2\n", "truncated");        // missing end marker
  reject("patterns 4\nfail 1 2\nend 7\n", "end marker claims");
  reject("patterns 4\nend 0\nfail 1 2\n", "after the end marker");
  reject("circuit a\ncircuit b\npatterns 4\nend 0\n", "line 2");
}

// The loader rejects out-of-range indices itself when given the
// observation-point space; without it the session validates in-memory
// logs at diagnose() time (see test_session.cpp).
TEST(FailureLogTest, LoadChecksPointRangeWhenOpsGiven) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  ResponseCapture cap(nl, 4);
  const std::size_t num_ops = cap.points().size();
  std::stringstream ok(strprintf("patterns 4\nfail 1 %zu\nend 1\n",
                                 num_ops - 1));
  EXPECT_EQ(load_failure_log(ok, &nl, &cap.points()).failures.size(), 1u);
  std::stringstream bad(strprintf("patterns 4\nfail 1 %zu\nend 1\n", num_ops));
  try {
    load_failure_log(bad, &nl, &cap.points());
    FAIL() << "accepted out-of-range observation point";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// Name-based records ("fail <pattern> po:<net>" / "ff:<cell>") round-trip
// through save/load and resolve to the same failures -- they reference
// nets, not indices, so they survive netlist re-finalization.
TEST(FailureLogTest, NamedRecordsRoundTrip) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 40, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  FailureLog log = cap.inject(pats, faults[7]);
  ASSERT_FALSE(log.failures.empty());

  std::stringstream ss;
  save_failure_log(ss, log, &nl, &cap.points(), /*named_records=*/true);
  const std::string text = ss.str();
  EXPECT_EQ(text.find(" 7\n"), std::string::npos);  // no raw indices
  EXPECT_TRUE(text.find("po:") != std::string::npos ||
              text.find("ff:") != std::string::npos);

  const FailureLog back = load_failure_log(ss, &nl, &cap.points());
  EXPECT_EQ(back.num_patterns, log.num_patterns);
  EXPECT_EQ(back.failures, log.failures);

  // Loading name-based records without the netlist context must fail
  // loudly rather than mis-index.
  std::stringstream again(text);
  EXPECT_THROW(load_failure_log(again), Error);

  // The informational "dff:<cell>.D" alias resolves too.
  const std::size_t cap_op = cap.points().num_pos();  // first capture point
  std::stringstream alias("patterns 40\nfail 3 " +
                          cap.points().name(nl, cap_op) + "\nend 1\n");
  const FailureLog al = load_failure_log(alias, &nl, &cap.points());
  ASSERT_EQ(al.failures.size(), 1u);
  EXPECT_EQ(al.failures[0].op, static_cast<std::uint32_t>(cap_op));
}

// Fuzz: random failure logs survive save -> load -> save in both text
// formats (index-based and named po:/ff: records) with a byte-identical
// second save and structural equality -- not just the hand-written logs
// the example tests cover.
TEST(FailureLogTest, FuzzRoundTripIsByteIdentical) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const ObservationPoints ops(nl);
  Rng rng(0xf0f0);
  for (int t = 0; t < 200; ++t) {
    FailureLog log;
    log.circuit = t % 7 == 0 ? "" : "c" + std::to_string(rng.next_below(1000));
    log.num_patterns = 1 + rng.next_below(200);
    const std::size_t raw = rng.next_below(60);  // duplicates welcome
    for (std::size_t i = 0; i < raw; ++i) {
      log.failures.push_back(
          {static_cast<std::uint32_t>(rng.next_below(log.num_patterns)),
           static_cast<std::uint32_t>(rng.next_below(ops.size()))});
    }
    log.normalize();

    // Index-based records: loadable without any netlist context.
    std::stringstream first;
    save_failure_log(first, log, &nl, &ops);
    const FailureLog back = load_failure_log(first);
    EXPECT_EQ(back.circuit, log.circuit);
    EXPECT_EQ(back.num_patterns, log.num_patterns);
    EXPECT_EQ(back.failures, log.failures);
    std::stringstream second;
    save_failure_log(second, back, &nl, &ops);
    EXPECT_EQ(second.str(), first.str());

    // Named po:/ff: records: resolved against the netlist on load.
    std::stringstream named_first;
    save_failure_log(named_first, log, &nl, &ops, /*named_records=*/true);
    const FailureLog named_back = load_failure_log(named_first, &nl, &ops);
    EXPECT_EQ(named_back.circuit, log.circuit);
    EXPECT_EQ(named_back.num_patterns, log.num_patterns);
    EXPECT_EQ(named_back.failures, log.failures);
    std::stringstream named_second;
    save_failure_log(named_second, named_back, &nl, &ops,
                     /*named_records=*/true);
    EXPECT_EQ(named_second.str(), named_first.str());
  }
}

TEST(FailureLogTest, NamedRecordRejectsUnknownNet) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const ObservationPoints ops(nl);
  std::stringstream ss("patterns 4\nfail 0 po:not_a_net\n");
  EXPECT_THROW(load_failure_log(ss, &nl, &ops), Error);
  std::stringstream ss2("patterns 4\nfail 0 zz:whatever\n");
  EXPECT_THROW(load_failure_log(ss2, &nl, &ops), Error);
}

// ---------- scoring early-exit ----------------------------------------------

// Early-exit may only drop candidates that provably cannot win: the top
// of the ranking (and every candidate at least as good as the best
// no-early-exit explanation) must be unchanged, and dropped candidates
// must rank strictly after all fully scored ones.
TEST(DiagnoseTest, EarlyExitPreservesTheWinner) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 96, 0xe4e);
  ResponseCapture cap(nl, 4);
  Diagnoser fast(nl, DiagnosisOptions{.score_early_exit = true});
  Diagnoser full(nl, DiagnosisOptions{.score_early_exit = false});

  int compared = 0;
  std::size_t total_dropped = 0;
  for (std::size_t fi = 0; fi < faults.size(); fi += 23) {
    const FailureLog log = cap.inject(pats, faults[fi]);
    if (log.failures.empty()) continue;
    const DiagnosisResult a = fast.diagnose(pats, faults, log);
    const DiagnosisResult b = full.diagnose(pats, faults, log);
    ASSERT_EQ(a.ranked.size(), b.ranked.size());
    EXPECT_EQ(b.num_dropped, 0u);
    total_dropped += a.num_dropped;
    EXPECT_EQ(a.rank_of(faults[fi]), b.rank_of(faults[fi]));
    EXPECT_EQ(a.ranked[0].fault, b.ranked[0].fault);
    EXPECT_EQ(a.ranked[0].tfsf, b.ranked[0].tfsf);
    EXPECT_EQ(a.ranked[0].hamming(), b.ranked[0].hamming());
    const std::uint64_t best = b.ranked[0].hamming();
    for (std::size_t i = 0; i < a.ranked.size(); ++i) {
      if (!a.ranked[i].dropped) continue;
      // Every following candidate is dropped too (they sort last)...
      for (std::size_t j = i; j < a.ranked.size(); ++j) {
        EXPECT_TRUE(a.ranked[j].dropped);
      }
      // ...and the full scoring confirms each dropped candidate is
      // strictly worse than the winner.
      for (std::size_t j = i; j < a.ranked.size(); ++j) {
        const std::size_t full_rank = b.rank_of(a.ranked[j].fault);
        EXPECT_GT(full_rank, 1u) << a.ranked[j].fault.to_string(nl);
      }
      break;
    }
    ++compared;
  }
  EXPECT_GE(compared, 10);
  // The whole point: on single-fault logs most candidates drop early.
  EXPECT_GT(total_dropped, 0u);
}

// ---------- diagnosis -------------------------------------------------------

TEST(DiagnoseTest, InjectedFaultRanksFirstOnS344) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 128, 0xd1a60);
  ResponseCapture cap(nl, 4);
  Diagnoser diag(nl, DiagnosisOptions{});

  // First fault-sim pass to find detected faults.
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
  const FaultSimResult det = fsim.run(pats, faults);
  ASSERT_GT(det.num_detected, 0u);

  int trials = 0;
  for (std::size_t fi = 0; fi < faults.size() && trials < 25; fi += 11) {
    if (!det.detected[fi]) continue;
    ++trials;
    const FailureLog log = cap.inject(pats, faults[fi]);
    ASSERT_FALSE(log.failures.empty());
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    ASSERT_FALSE(res.ranked.empty());
    // The injected fault explains its own log exactly...
    EXPECT_EQ(res.rank_of(faults[fi]), 1u) << faults[fi].to_string(nl);
    // ...and the top candidate is an exact match.
    EXPECT_TRUE(res.ranked[0].exact());
    EXPECT_EQ(res.ranked[0].tfsf, res.num_failures);
  }
  EXPECT_GE(trials, 10);
}

TEST(DiagnoseTest, PruningNeverDropsTheInjectedFault) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 96, 0xabcd);
  ResponseCapture cap(nl, 4);
  Diagnoser pruned(nl, DiagnosisOptions{.cone_pruning = true});
  Diagnoser full(nl, DiagnosisOptions{.cone_pruning = false});

  for (std::size_t fi = 0; fi < faults.size(); fi += 37) {
    const FailureLog log = cap.inject(pats, faults[fi]);
    if (log.failures.empty()) continue;  // undetected: nothing to diagnose
    const DiagnosisResult a = pruned.diagnose(pats, faults, log);
    const DiagnosisResult b = full.diagnose(pats, faults, log);
    EXPECT_LE(a.num_candidates, b.num_candidates);
    EXPECT_GE(a.rank_of(faults[fi]), 1u);
    // Pruning must not change what the best explanation looks like.
    ASSERT_FALSE(a.ranked.empty());
    ASSERT_FALSE(b.ranked.empty());
    EXPECT_EQ(a.ranked[0].tfsf, b.ranked[0].tfsf);
    EXPECT_EQ(a.ranked[0].hamming(), b.ranked[0].hamming());
  }
}

TEST(DiagnoseTest, EmptyLogScoresEverythingAsUndetected) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 16, 3);
  Diagnoser diag(nl, DiagnosisOptions{.cone_pruning = false});
  FailureLog log;
  log.num_patterns = pats.size();
  const DiagnosisResult res = diag.diagnose(pats, faults, log);
  ASSERT_EQ(res.ranked.size(), faults.size());
  // Exact matches are exactly the faults this pattern set cannot detect.
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 1});
  const FaultSimResult det = fsim.run(pats, faults);
  for (const CandidateScore& sc : res.ranked) {
    EXPECT_EQ(sc.exact(), !det.detected[sc.fault_index])
        << sc.fault.to_string(nl);
  }
}

// A pattern set spanning more than 64 blocks at W=1 exercises the
// re-simulating (uncached) good-machine path of the round loop; rankings
// must still be bit-identical to a wide-block run that caches every
// block.
TEST(DiagnoseTest, ManyBlockPatternSetsMatchCachedPath) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  ASSERT_GT(faults.size(), 64u);  // several scoring rounds
  const auto pats = random_patterns(nl, 70 * 64 + 17, 0xb10c);
  ResponseCapture cap(nl, 4);
  const FailureLog log = cap.inject(pats, faults[3]);
  ASSERT_FALSE(log.failures.empty());

  DiagnosisResult ref;
  bool have_ref = false;
  for (int words : {1, 8}) {
    Diagnoser d(nl, DiagnosisOptions{.block_words = words,
                                     .cone_pruning = false});
    const DiagnosisResult res = d.diagnose(pats, faults, log);
    EXPECT_EQ(res.rank_of(faults[3]), 1u);
    if (!have_ref) {
      ref = res;
      have_ref = true;
      continue;
    }
    ASSERT_EQ(res.ranked.size(), ref.ranked.size());
    for (std::size_t i = 0; i < ref.ranked.size(); ++i) {
      ASSERT_EQ(res.ranked[i].fault, ref.ranked[i].fault) << "W=" << words;
      ASSERT_EQ(res.ranked[i].tfsf, ref.ranked[i].tfsf);
      ASSERT_EQ(res.ranked[i].tpsf, ref.ranked[i].tpsf);
      ASSERT_EQ(res.ranked[i].dropped, ref.ranked[i].dropped);
    }
  }
}

// ---------- acceptance: every profile, deterministic, rank-1 ----------------

struct TrialStats {
  int trials = 0;
  int rank1 = 0;
  int top5 = 0;
};

// For every benchgen profile: inject >= 100 sampled detected collapsed
// faults, diagnose from the synthetic log, and require the injected fault
// (ties share a rank) to place #1 in >= 95% of trials and in the top-5
// always. Rankings must be bit-identical across
// (block_words, num_threads) in {1,4} x {1,4}.
TEST(DiagnoseAcceptance, AllProfilesRankInjectedFaultFirst) {
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto faults = collapse_faults(nl);
    const int num_patterns = 96;
    const auto pats = random_patterns(nl, num_patterns, 0xacce97 + profile.seed);

    FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
    const FaultSimResult det = fsim.run(pats, faults);
    std::vector<std::size_t> detected;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (det.detected[fi]) detected.push_back(fi);
    }
    ASSERT_GE(detected.size(), 100u) << profile.name;

    // Evenly sample ~100 detected faults.
    const std::size_t stride = detected.size() / 100;
    std::vector<std::size_t> sample;
    for (std::size_t i = 0; i < detected.size() && sample.size() < 100;
         i += stride) {
      sample.push_back(detected[i]);
    }

    ResponseCapture cap(nl, 4);
    Diagnoser diag(nl, DiagnosisOptions{.block_words = 4, .num_threads = 1});
    TrialStats stats;
    for (std::size_t fi : sample) {
      const FailureLog log = cap.inject(pats, faults[fi]);
      ASSERT_FALSE(log.failures.empty()) << profile.name;
      const DiagnosisResult res = diag.diagnose(pats, faults, log);
      const std::size_t rank = res.rank_of(faults[fi]);
      ASSERT_GE(rank, 1u) << profile.name << ": injected fault pruned away";
      stats.trials++;
      if (rank == 1) stats.rank1++;
      if (rank <= 5) stats.top5++;
    }
    EXPECT_GE(stats.trials, 100);
    EXPECT_GE(stats.rank1 * 100, stats.trials * 95)
        << profile.name << ": " << stats.rank1 << "/" << stats.trials;
    EXPECT_EQ(stats.top5, stats.trials) << profile.name;

    // Bit-identical rankings across engine configurations on a subset.
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t fi = sample[sample.size() / 5 * trial];
      const FailureLog log = cap.inject(pats, faults[fi]);
      DiagnosisResult ref;
      bool have_ref = false;
      for (int words : {1, 4}) {
        for (int threads : {1, 4}) {
          Diagnoser d(nl, DiagnosisOptions{.block_words = words,
                                           .num_threads = threads});
          const DiagnosisResult res = d.diagnose(pats, faults, log);
          if (!have_ref) {
            ref = res;
            have_ref = true;
            continue;
          }
          ASSERT_EQ(res.ranked.size(), ref.ranked.size()) << profile.name;
          for (std::size_t i = 0; i < ref.ranked.size(); ++i) {
            ASSERT_EQ(res.ranked[i].fault, ref.ranked[i].fault)
                << profile.name << " W=" << words << " T=" << threads;
            ASSERT_EQ(res.ranked[i].tfsf, ref.ranked[i].tfsf);
            ASSERT_EQ(res.ranked[i].tfsp, ref.ranked[i].tfsp);
            ASSERT_EQ(res.ranked[i].tpsf, ref.ranked[i].tpsf);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace scanpower
