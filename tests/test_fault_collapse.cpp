// Property tests for fault-equivalence collapsing: the rules in
// src/atpg/fault.cpp that diagnosis ranking depends on. Two faults in the
// same collapse class must be detected by exactly the same patterns, so
// for any pattern set the uncollapsed fault list and the collapsed list
// (expanded through collapse_representative) must yield identical
// detection -- and therefore identical fault coverage over either
// universe.

#include <gtest/gtest.h>

#include <map>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

struct FaultKey {
  GateId gate;
  int pin;
  bool stuck_at;
  friend auto operator<=>(const FaultKey&, const FaultKey&) = default;
};
FaultKey key(const Fault& f) { return {f.gate, f.pin, f.stuck_at}; }

// Every enumerated fault's representative must be a member of the
// collapsed list, and the collapsed list must keep only representatives.
TEST(FaultCollapse, RepresentativesSpanTheCollapsedList) {
  for (const char* name : {"s27", "s344", "s641"}) {
    const Netlist nl = map_to_nand_nor_inv(make_circuit(name));
    const auto collapsed = collapse_faults(nl);
    std::map<FaultKey, std::size_t> index;
    for (std::size_t i = 0; i < collapsed.size(); ++i) {
      index.emplace(key(collapsed[i]), i);
    }
    for (const Fault& f : enumerate_faults(nl)) {
      const Fault rep = collapse_representative(nl, f);
      EXPECT_TRUE(index.count(key(rep)))
          << name << ": rep " << rep.to_string(nl) << " of "
          << f.to_string(nl) << " not in collapsed list";
      // A representative is a fixpoint.
      EXPECT_EQ(key(collapse_representative(nl, rep)), key(rep));
    }
    for (const Fault& f : collapsed) {
      EXPECT_EQ(key(collapse_representative(nl, f)), key(f))
          << name << ": collapsed list keeps a non-representative";
    }
  }
}

// The equivalence property itself: on random pattern sets, across the
// benchgen profiles, every enumerated fault is detected exactly when its
// collapsed representative is detected -- same first detecting pattern,
// too. This is what makes diagnosing over the collapsed list lossless.
TEST(FaultCollapse, CollapsedAndUncollapsedDetectionIdentical) {
  for (const SynthProfile& profile : iscas89_profiles()) {
    if (profile.num_gates > 2000) continue;  // equivalence is structural;
                                             // the large profiles add cost,
                                             // not rule coverage
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto uncollapsed = enumerate_faults(nl);
    const auto collapsed = collapse_faults(nl);
    ASSERT_LT(collapsed.size(), uncollapsed.size()) << profile.name;

    std::map<FaultKey, std::size_t> rep_index;
    for (std::size_t i = 0; i < collapsed.size(); ++i) {
      rep_index.emplace(key(collapsed[i]), i);
    }

    for (int round = 0; round < 2; ++round) {
      const auto pats =
          random_patterns(nl, 80, 0xc011a95e + profile.seed + round);
      FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
      const FaultSimResult full = fsim.run(pats, uncollapsed);
      const FaultSimResult coll = fsim.run(pats, collapsed);

      std::size_t checked = 0;
      for (std::size_t fi = 0; fi < uncollapsed.size(); ++fi) {
        const Fault rep = collapse_representative(nl, uncollapsed[fi]);
        const auto it = rep_index.find(key(rep));
        ASSERT_NE(it, rep_index.end())
            << profile.name << ": " << uncollapsed[fi].to_string(nl);
        const std::size_t ri = it->second;
        ASSERT_EQ(full.detected[fi], coll.detected[ri])
            << profile.name << ": " << uncollapsed[fi].to_string(nl)
            << " vs rep " << rep.to_string(nl);
        ASSERT_EQ(full.detecting_pattern[fi], coll.detecting_pattern[ri])
            << profile.name << ": " << uncollapsed[fi].to_string(nl)
            << " vs rep " << rep.to_string(nl);
        ++checked;
      }
      EXPECT_EQ(checked, uncollapsed.size());

      // Coverage over the uncollapsed universe is identical whether it is
      // simulated directly or expanded from the collapsed result.
      std::size_t direct = 0, expanded = 0;
      for (std::size_t fi = 0; fi < uncollapsed.size(); ++fi) {
        if (full.detected[fi]) ++direct;
        const Fault rep = collapse_representative(nl, uncollapsed[fi]);
        if (coll.detected[rep_index.at(key(rep))]) ++expanded;
      }
      EXPECT_EQ(direct, expanded) << profile.name;
    }
  }
}

TEST(FaultParse, RoundTripsToString) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = enumerate_faults(nl);
  for (const Fault& f : faults) {
    const Fault back = parse_fault(nl, f.to_string(nl));
    EXPECT_EQ(back, f) << f.to_string(nl);
  }
  EXPECT_THROW(parse_fault(nl, "nosuchnet/sa0"), Error);
  EXPECT_THROW(parse_fault(nl, "G10/sa2"), Error);
  EXPECT_THROW(parse_fault(nl, "G10"), Error);
  EXPECT_THROW(parse_fault(nl, "G10.in9/sa1"), Error);
}

}  // namespace
}  // namespace scanpower
