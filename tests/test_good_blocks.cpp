// GoodBlockCache cached <-> streaming boundary: past kDefaultMaxCachedBlocks
// the cache keeps only geometry and callers replay blocks through their
// own streaming simulator, and the two paths must be bit-identical -- the
// diagnosers score candidates out of whichever side the cap selected, so
// any divergence would silently change diagnoses with the pattern count.
// These tests pin the boundary at exactly the cap and cap +/- 1 blocks
// (including a partial final block) for both a small explicit cap and the
// real default cap.

#include <gtest/gtest.h>

#include <vector>

#include "atpg/packed_sim.hpp"
#include "atpg/pattern.hpp"
#include "benchgen/benchgen.hpp"
#include "diag/response.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, std::size_t n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

/// Binds (nl, patterns) at `cap` and checks the cached() verdict; when
/// cached, every block's values must equal a streamed replay of the same
/// block (the contract both diagnosers rely on).
void expect_boundary(const Netlist& nl,
                     const std::vector<TestPattern>& patterns, int words,
                     std::size_t cap, bool expect_cached) {
  GoodBlockCache cache;
  cache.bind(nl, patterns, words, cap);
  const std::size_t lanes = static_cast<std::size_t>(words) * 64;
  const std::size_t nblocks = (patterns.size() + lanes - 1) / lanes;
  ASSERT_EQ(cache.num_blocks(), nblocks);
  EXPECT_EQ(cache.cached(), expect_cached)
      << nblocks << " blocks vs cap " << cap;
  EXPECT_EQ(cache.blocks_cached(), expect_cached ? nblocks : 0u);

  // Bit-identity across the boundary: replay every block through the
  // streaming path and compare full value storage against either the
  // cached block (cached side) or an independent second replay
  // (streaming side -- pins that replays are deterministic).
  BlockSimulator scratch(nl, words);
  BlockSimulator scratch2(nl, words);
  for (std::size_t b = 0; b < nblocks; ++b) {
    cache.stream(b, scratch);
    if (expect_cached) {
      EXPECT_EQ(cache.block(b).storage(), scratch.storage())
          << "cached vs streamed divergence in block " << b;
    } else {
      cache.stream(b, scratch2);
      EXPECT_EQ(scratch.storage(), scratch2.storage())
          << "streaming replay not deterministic in block " << b;
    }
  }
}

TEST(GoodBlockCacheTest, SmallCapBoundary) {
  const Netlist nl = make_s27();
  const int words = 1;  // 64-pattern blocks
  const std::size_t cap = 4;
  // cap-1, cap, cap+1 whole blocks, plus a partial final block straddling
  // the cap (cap blocks where the last holds a single pattern).
  expect_boundary(nl, random_patterns(nl, 64 * (cap - 1), 0xb10c), words, cap,
                  true);
  expect_boundary(nl, random_patterns(nl, 64 * cap, 0xb10c), words, cap,
                  true);
  expect_boundary(nl, random_patterns(nl, 64 * cap + 1, 0xb10c), words, cap,
                  false);
  expect_boundary(nl, random_patterns(nl, 64 * (cap + 1), 0xb10c), words, cap,
                  false);
  expect_boundary(nl, random_patterns(nl, 64 * (cap - 1) + 1, 0xb10c), words,
                  cap, true);
}

TEST(GoodBlockCacheTest, DefaultCapBoundary) {
  const Netlist nl = make_s27();
  const int words = 1;
  const std::size_t cap = GoodBlockCache::kDefaultMaxCachedBlocks;
  // s27 is tiny, so even 257 * 64 patterns simulate in well under a
  // second; the three shapes bracket the real default boundary.
  expect_boundary(nl, random_patterns(nl, 64 * (cap - 1) + 7, 0xcafe), words,
                  cap, true);
  expect_boundary(nl, random_patterns(nl, 64 * cap, 0xcafe), words, cap,
                  true);
  expect_boundary(nl, random_patterns(nl, 64 * cap + 1, 0xcafe), words, cap,
                  false);
}

TEST(GoodBlockCacheTest, WideBlocksPartialFinal) {
  // W=4 (256-lane blocks) with a ragged final block: the padded lanes
  // must not leak into the comparison (storage holds them identically on
  // both paths because load_pattern_block fills them the same way).
  const Netlist nl = make_s27();
  const std::size_t cap = 2;
  expect_boundary(nl, random_patterns(nl, 256 + 96 + 3, 0x5eed), 4, cap,
                  true);
  expect_boundary(nl, random_patterns(nl, 3 * 256 - 1, 0x5eed), 4, cap,
                  false);
}

}  // namespace
}  // namespace scanpower
