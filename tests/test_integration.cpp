// End-to-end properties of the full flow: the qualitative claims of the
// paper must hold on our reproduction. All flows run through the
// stateful ScanSession API (the deprecated free-function wrappers are
// banned from migrated targets by -Werror=deprecated-declarations).

#include <gtest/gtest.h>

#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "core/session.hpp"
#include "core/verify.hpp"
#include "techmap/techmap.hpp"

namespace scanpower {
namespace {

FlowResult session_flow(const std::string& name, const FlowOptions& opts = {}) {
  ScanSession session(map_to_nand_nor_inv(make_iscas89_like(name)), opts);
  return session.run_flow();
}

class FlowTest : public ::testing::Test {
 protected:
  static const FlowResult& result() {
    static const FlowResult r = session_flow("s344");
    return r;
  }
};

TEST_F(FlowTest, ProposedReducesDynamicPowerVsTraditional) {
  EXPECT_LT(result().proposed.dynamic_per_hz_uw,
            result().traditional.dynamic_per_hz_uw);
}

TEST_F(FlowTest, ProposedReducesStaticPowerVsTraditional) {
  EXPECT_LT(result().proposed.static_uw, result().traditional.static_uw);
}

TEST_F(FlowTest, ProposedBeatsInputControlOnStatic) {
  // The paper's static improvements vs [8] are positive on every circuit.
  EXPECT_LT(result().proposed.static_uw, result().input_control.static_uw);
}

TEST_F(FlowTest, InputControlBetweenTraditionalAndProposedOnDynamic) {
  // Input control blocks some transitions: no worse than traditional.
  EXPECT_LE(result().input_control.dynamic_per_hz_uw,
            result().traditional.dynamic_per_hz_uw * 1.02);
}

TEST_F(FlowTest, SomeCellsMultiplexed) {
  EXPECT_GT(result().mux_plan.num_multiplexed, 0u);
  EXPECT_LE(result().mux_plan.num_multiplexed,
            result().mux_plan.multiplexed.size());
}

TEST_F(FlowTest, ImprovementPercentagesConsistent) {
  const FlowResult& r = result();
  EXPECT_NEAR(r.dyn_vs_traditional_pct,
              improvement_pct(r.traditional.dynamic_per_hz_uw,
                              r.proposed.dynamic_per_hz_uw),
              1e-9);
  EXPECT_NEAR(r.stat_vs_input_control_pct,
              improvement_pct(r.input_control.static_uw, r.proposed.static_uw),
              1e-9);
}

TEST_F(FlowTest, TestsShared) {
  EXPECT_GT(result().num_patterns, 0u);
  EXPECT_GT(result().fault_coverage, 0.3);
}

TEST(FlowProperties, DeterministicEndToEnd) {
  // Two sessions -- and two runs of one session -- agree exactly.
  ScanSession session(map_to_nand_nor_inv(make_iscas89_like("s382")),
                      FlowOptions{});
  const FlowResult a = session.run_flow();
  const FlowResult a2 = session.run_flow();
  const FlowResult b = session_flow("s382");
  EXPECT_DOUBLE_EQ(a.proposed.dynamic_per_hz_uw, b.proposed.dynamic_per_hz_uw);
  EXPECT_DOUBLE_EQ(a.proposed.static_uw, b.proposed.static_uw);
  EXPECT_DOUBLE_EQ(a.traditional.static_uw, b.traditional.static_uw);
  EXPECT_DOUBLE_EQ(a.proposed.static_uw, a2.proposed.static_uw);
  EXPECT_DOUBLE_EQ(a.proposed.dynamic_per_hz_uw,
                   a2.proposed.dynamic_per_hz_uw);
}

TEST(FlowProperties, FaultCoverageUnaffectedByStructure) {
  // The paper: "Fault coverage is not affected by this method." The muxed
  // netlist in normal mode must produce identical responses, so the same
  // test set detects the same original-circuit faults.
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s382"));
  FlowOptions opts;
  ScanSession session(mapped, opts);
  FlowResult details;
  session.run_proposed(session.tests(), &details);
  std::vector<Logic> mux_values = details.pattern.mux_pattern;
  const StructureVerification v = verify_mux_structure(
      mapped, details.mux_plan, mux_values, opts.delay, &session.tests());
  EXPECT_TRUE(v.all_ok());
  EXPECT_TRUE(v.normal_mode_equivalent);
}

TEST(FlowProperties, AblationObservabilityHelpsStatic) {
  // With the leakage-observability directive the proposed method should
  // not be *worse* on static power than the undirected variant (small
  // tolerance: the directive is a heuristic).
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s344"));
  FlowOptions on;
  FlowOptions off;
  off.use_observability_directive = false;
  ScanSession s_on(mapped, on);
  ScanSession s_off(mapped, off);
  const TestSet& tests = s_on.tests();
  const ScanPowerResult with = s_on.run_proposed(tests, nullptr);
  const ScanPowerResult without = s_off.run_proposed(tests, nullptr);
  EXPECT_LT(with.static_uw, without.static_uw * 1.05);
}

TEST(FlowProperties, AblationReorderNeverHurtsStatic) {
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s444"));
  FlowOptions on;
  FlowOptions off;
  off.do_pin_reorder = false;
  ScanSession s_on(mapped, on);
  ScanSession s_off(mapped, off);
  const TestSet& tests = s_on.tests();
  const ScanPowerResult with = s_on.run_proposed(tests, nullptr);
  const ScanPowerResult without = s_off.run_proposed(tests, nullptr);
  EXPECT_LE(with.static_uw, without.static_uw + 1e-9);
  // Dynamic power is untouched by reordering (same values everywhere).
  EXPECT_NEAR(with.dynamic_per_hz_uw, without.dynamic_per_hz_uw,
              1e-12 + without.dynamic_per_hz_uw * 1e-9);
}

TEST(FlowProperties, NoMuxesDegradesToInputControlShape) {
  // Disabling mux insertion leaves only PI control + fill + reorder; the
  // dynamic result must be >= the full method's (muxes only ever block
  // more transitions).
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s344"));
  FlowOptions full;
  FlowOptions no_mux;
  no_mux.insert_muxes = false;
  ScanSession s_full(mapped, full);
  ScanSession s_no_mux(mapped, no_mux);
  const TestSet& tests = s_full.tests();
  const ScanPowerResult with = s_full.run_proposed(tests, nullptr);
  const ScanPowerResult without = s_no_mux.run_proposed(tests, nullptr);
  EXPECT_LE(with.dynamic_per_hz_uw, without.dynamic_per_hz_uw * 1.02);
}

TEST(FlowProperties, S27SmokeTest) {
  ScanSession session(map_to_nand_nor_inv(make_s27()), FlowOptions{});
  const FlowResult r = session.run_flow();
  EXPECT_GT(r.traditional.static_uw, 0.0);
  EXPECT_GT(r.traditional.dynamic_per_hz_uw, 0.0);
  EXPECT_LE(r.proposed.dynamic_per_hz_uw, r.traditional.dynamic_per_hz_uw);
}

}  // namespace
}  // namespace scanpower
