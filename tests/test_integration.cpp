// End-to-end properties of the full flow: the qualitative claims of the
// paper must hold on our reproduction.

#include <gtest/gtest.h>

#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/verify.hpp"
#include "techmap/techmap.hpp"

namespace scanpower {
namespace {

class FlowTest : public ::testing::Test {
 protected:
  static const FlowResult& result() {
    static const FlowResult r = [] {
      const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s344"));
      return run_flow(mapped, FlowOptions{});
    }();
    return r;
  }
};

TEST_F(FlowTest, ProposedReducesDynamicPowerVsTraditional) {
  EXPECT_LT(result().proposed.dynamic_per_hz_uw,
            result().traditional.dynamic_per_hz_uw);
}

TEST_F(FlowTest, ProposedReducesStaticPowerVsTraditional) {
  EXPECT_LT(result().proposed.static_uw, result().traditional.static_uw);
}

TEST_F(FlowTest, ProposedBeatsInputControlOnStatic) {
  // The paper's static improvements vs [8] are positive on every circuit.
  EXPECT_LT(result().proposed.static_uw, result().input_control.static_uw);
}

TEST_F(FlowTest, InputControlBetweenTraditionalAndProposedOnDynamic) {
  // Input control blocks some transitions: no worse than traditional.
  EXPECT_LE(result().input_control.dynamic_per_hz_uw,
            result().traditional.dynamic_per_hz_uw * 1.02);
}

TEST_F(FlowTest, SomeCellsMultiplexed) {
  EXPECT_GT(result().mux_plan.num_multiplexed, 0u);
  EXPECT_LE(result().mux_plan.num_multiplexed,
            result().mux_plan.multiplexed.size());
}

TEST_F(FlowTest, ImprovementPercentagesConsistent) {
  const FlowResult& r = result();
  EXPECT_NEAR(r.dyn_vs_traditional_pct,
              improvement_pct(r.traditional.dynamic_per_hz_uw,
                              r.proposed.dynamic_per_hz_uw),
              1e-9);
  EXPECT_NEAR(r.stat_vs_input_control_pct,
              improvement_pct(r.input_control.static_uw, r.proposed.static_uw),
              1e-9);
}

TEST_F(FlowTest, TestsShared) {
  EXPECT_GT(result().num_patterns, 0u);
  EXPECT_GT(result().fault_coverage, 0.3);
}

TEST(FlowProperties, DeterministicEndToEnd) {
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const FlowResult a = run_flow(mapped, FlowOptions{});
  const FlowResult b = run_flow(mapped, FlowOptions{});
  EXPECT_DOUBLE_EQ(a.proposed.dynamic_per_hz_uw, b.proposed.dynamic_per_hz_uw);
  EXPECT_DOUBLE_EQ(a.proposed.static_uw, b.proposed.static_uw);
  EXPECT_DOUBLE_EQ(a.traditional.static_uw, b.traditional.static_uw);
}

TEST(FlowProperties, FaultCoverageUnaffectedByStructure) {
  // The paper: "Fault coverage is not affected by this method." The muxed
  // netlist in normal mode must produce identical responses, so the same
  // test set detects the same original-circuit faults.
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s382"));
  FlowOptions opts;
  FlowResult details;
  const TestSet tests = generate_tests(mapped, opts.tpg);
  run_proposed(mapped, tests, opts, &details);
  std::vector<Logic> mux_values = details.pattern.mux_pattern;
  const StructureVerification v = verify_mux_structure(
      mapped, details.mux_plan, mux_values, opts.delay, &tests);
  EXPECT_TRUE(v.all_ok());
  EXPECT_TRUE(v.normal_mode_equivalent);
}

TEST(FlowProperties, AblationObservabilityHelpsStatic) {
  // With the leakage-observability directive the proposed method should
  // not be *worse* on static power than the undirected variant (small
  // tolerance: the directive is a heuristic).
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s344"));
  FlowOptions on;
  FlowOptions off;
  off.use_observability_directive = false;
  const TestSet tests = generate_tests(mapped, on.tpg);
  const ScanPowerResult with = run_proposed(mapped, tests, on, nullptr);
  const ScanPowerResult without = run_proposed(mapped, tests, off, nullptr);
  EXPECT_LT(with.static_uw, without.static_uw * 1.05);
}

TEST(FlowProperties, AblationReorderNeverHurtsStatic) {
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s444"));
  FlowOptions on;
  FlowOptions off;
  off.do_pin_reorder = false;
  const TestSet tests = generate_tests(mapped, on.tpg);
  const ScanPowerResult with = run_proposed(mapped, tests, on, nullptr);
  const ScanPowerResult without = run_proposed(mapped, tests, off, nullptr);
  EXPECT_LE(with.static_uw, without.static_uw + 1e-9);
  // Dynamic power is untouched by reordering (same values everywhere).
  EXPECT_NEAR(with.dynamic_per_hz_uw, without.dynamic_per_hz_uw,
              1e-12 + without.dynamic_per_hz_uw * 1e-9);
}

TEST(FlowProperties, NoMuxesDegradesToInputControlShape) {
  // Disabling mux insertion leaves only PI control + fill + reorder; the
  // dynamic result must be >= the full method's (muxes only ever block
  // more transitions).
  const Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s344"));
  FlowOptions full;
  FlowOptions no_mux;
  no_mux.insert_muxes = false;
  const TestSet tests = generate_tests(mapped, full.tpg);
  const ScanPowerResult with = run_proposed(mapped, tests, full, nullptr);
  const ScanPowerResult without = run_proposed(mapped, tests, no_mux, nullptr);
  EXPECT_LE(with.dynamic_per_hz_uw, without.dynamic_per_hz_uw * 1.02);
}

TEST(FlowProperties, S27SmokeTest) {
  const Netlist mapped = map_to_nand_nor_inv(make_s27());
  const FlowResult r = run_flow(mapped, FlowOptions{});
  EXPECT_GT(r.traditional.static_uw, 0.0);
  EXPECT_GT(r.traditional.dynamic_per_hz_uw, 0.0);
  EXPECT_LE(r.proposed.dynamic_per_hz_uw, r.traditional.dynamic_per_hz_uw);
}

}  // namespace
}  // namespace scanpower
