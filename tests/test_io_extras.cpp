// Tests for the auxiliary I/O paths: test-set files, VCD dumps and the
// scan evaluator's per-cycle observer hook.

#include <gtest/gtest.h>

#include <sstream>

#include "atpg/pattern.hpp"
#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "scan/scan_sim.hpp"
#include "sim/vcd.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

TEST(TestSetIo, RoundTrip) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const TestSet ts = generate_tests(nl);
  std::ostringstream out;
  save_test_set(out, ts);
  std::istringstream in(out.str());
  const TestSet back = load_test_set(in);
  EXPECT_EQ(back.seed, ts.seed);
  EXPECT_EQ(back.total_faults, ts.total_faults);
  EXPECT_EQ(back.detected_faults, ts.detected_faults);
  EXPECT_EQ(back.untestable_faults, ts.untestable_faults);
  ASSERT_EQ(back.patterns.size(), ts.patterns.size());
  for (std::size_t i = 0; i < ts.patterns.size(); ++i) {
    EXPECT_EQ(back.patterns[i].to_string(), ts.patterns[i].to_string());
  }
}

TEST(TestSetIo, PreservesDontCares) {
  std::istringstream in("# c\nseed 7\nstats 10 8 1 1\n01x|1x0\nx11|001\n");
  const TestSet ts = load_test_set(in);
  ASSERT_EQ(ts.patterns.size(), 2u);
  EXPECT_EQ(ts.patterns[0].pi[2], Logic::X);
  EXPECT_EQ(ts.patterns[1].ppi[2], Logic::One);
  EXPECT_EQ(ts.seed, 7u);
}

TEST(TestSetIo, RejectsInconsistentWidths) {
  std::istringstream in("01|10\n011|10\n");
  EXPECT_THROW(load_test_set(in), Error);
}

TEST(TestSetIo, RejectsMalformedStats) {
  std::istringstream in("stats 1 2\n");
  EXPECT_THROW(load_test_set(in), Error);
}

TEST(Vcd, HeaderAndChangesWritten) {
  const Netlist nl = make_s27();
  std::ostringstream out;
  VcdWriter vcd(out, nl, "s27");
  std::vector<Logic> v0(nl.num_gates(), Logic::Zero);
  std::vector<Logic> v1 = v0;
  v1[nl.inputs()[0]] = Logic::One;
  vcd.sample(0, v0);
  const std::size_t after_first = vcd.changes_written();
  vcd.sample(1, v1);
  EXPECT_EQ(vcd.changes_written(), after_first + 1);  // one signal changed
  const std::string text = out.str();
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$dumpvars"), std::string::npos);
  EXPECT_NE(text.find("#1"), std::string::npos);
  // Every net declared.
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    EXPECT_NE(text.find(" " + nl.gate_name(id) + " $end"), std::string::npos);
  }
}

TEST(Vcd, NoTimestepWhenNothingChanges) {
  const Netlist nl = make_s27();
  std::ostringstream out;
  VcdWriter vcd(out, nl, "s27");
  std::vector<Logic> v(nl.num_gates(), Logic::X);
  vcd.sample(0, v);
  vcd.sample(1, v);  // identical: no #1 section
  EXPECT_EQ(out.str().find("#1"), std::string::npos);
}

TEST(Vcd, SignalSubsetRespected) {
  const Netlist nl = make_s27();
  std::ostringstream out;
  VcdWriter vcd(out, nl, "s27", {nl.inputs()[0], nl.dffs()[0]});
  std::vector<Logic> v(nl.num_gates(), Logic::Zero);
  vcd.sample(0, v);
  EXPECT_EQ(vcd.changes_written(), 2u);
}

TEST(CycleObserver, CalledOncePerObservedCycle) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(99);
  TestSet ts;
  for (int i = 0; i < 3; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  ScanPowerEvaluator eval(nl, leak, caps);
  std::size_t calls = 0;
  std::size_t last_cycle = 0;
  ScanSimOptions so;
  so.cycle_observer = [&](std::size_t cycle, std::span<const Logic> values) {
    EXPECT_EQ(values.size(), nl.num_gates());
    last_cycle = cycle;
    ++calls;
  };
  const ScanPowerResult r = eval.evaluate(ts, {}, {}, so);
  EXPECT_EQ(calls, r.cycles);
  EXPECT_EQ(last_cycle + 1, r.cycles);
}

TEST(CycleObserver, DrivesVcdDump) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(101);
  TestSet ts;
  for (int i = 0; i < 2; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  std::ostringstream out;
  VcdWriter vcd(out, nl, "scan");
  ScanSimOptions so;
  so.cycle_observer = [&](std::size_t cycle, std::span<const Logic> values) {
    vcd.sample(cycle, values);
  };
  ScanPowerEvaluator eval(nl, leak, caps);
  eval.evaluate(ts, {}, {}, so);
  EXPECT_GT(vcd.changes_written(), nl.num_gates());  // initial dump + activity
  EXPECT_NE(out.str().find("$dumpvars"), std::string::npos);
}

}  // namespace
}  // namespace scanpower
