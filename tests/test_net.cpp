// Network transport subsystem: framing hardening, DiagnosisQueue
// admission control / shutdown semantics, and the TCP diagnosis service
// end to end over loopback.
//
// House rule under test, extended across the wire: a diagnosis response
// carried over TCP must be byte-identical to the in-process
// ScanSession::diagnose() result serialized through the same
// result_json(), for mixed full/compacted evidence at every
// (block_words, num_threads) in {1,4} x {1,4}. The suite runs under
// TSan in CI (ctest -R test_net) -- the accept loop, per-connection
// readers, shutdown drain and the queue dispatcher all cross threads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/pattern.hpp"
#include "benchgen/benchgen.hpp"
#include "compact/signature_log.hpp"
#include "core/session.hpp"
#include "core/work_queue.hpp"
#include "diag/response.hpp"
#include "net/client.hpp"
#include "net/framing.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "netlist/bench_io.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

using net::DiagClient;
using net::LineReader;
using net::LineTooLongError;

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "test_net_" + name;
}

/// Writes `name` as a mapped .bench file and re-parses it, so the test
/// and the server (which loads from the same file) agree on the exact
/// netlist -- byte-identity starts at the design bytes.
struct Dut {
  std::string bench_path;
  Netlist nl;
  std::vector<Fault> faults;
};

Dut make_dut(const std::string& name) {
  Dut d;
  d.bench_path = temp_path(name + ".bench");
  {
    std::ofstream f(d.bench_path);
    write_bench(f, map_to_nand_nor_inv(make_circuit(name)));
  }
  d.nl = parse_bench_file(d.bench_path);
  d.faults = collapse_faults(d.nl);
  return d;
}

FlowOptions make_opts(int block_words, int threads) {
  FlowOptions o;
  o.diag.block_words = block_words;
  o.diag.num_threads = threads;
  return o;
}

// ---------- LineReader -------------------------------------------------------

TEST(LineReaderTest, SplitCoalescedAndCrlfWrites) {
  LineReader r;
  // One command split byte-by-byte (worst-case TCP segmentation).
  const std::string cmd = "design a.bench\n";
  for (char c : cmd) {
    EXPECT_FALSE(r.next().has_value());
    r.feed(std::string_view(&c, 1));
  }
  EXPECT_EQ(r.next(), std::optional<std::string>("design a.bench"));
  // Three commands coalesced into one segment, CRLF included.
  r.feed("patterns 8 7\r\nflush\nqu");
  EXPECT_EQ(r.next(), std::optional<std::string>("patterns 8 7"));
  EXPECT_EQ(r.next(), std::optional<std::string>("flush"));
  EXPECT_FALSE(r.next().has_value());  // "qu" still unterminated
  r.feed("it\n");
  EXPECT_EQ(r.next(), std::optional<std::string>("quit"));
  EXPECT_EQ(r.line_no(), 5u);
  EXPECT_TRUE(r.take_partial().empty());
}

TEST(LineReaderTest, OversizedLineIsRejectedOnceAndStreamSurvives) {
  LineReader r(/*max_line=*/8);
  r.feed("0123456789abcdef\nok\n");
  try {
    r.next();
    FAIL() << "expected LineTooLongError";
  } catch (const LineTooLongError& e) {
    EXPECT_EQ(e.line_no(), 1u);
    EXPECT_EQ(e.limit(), 8u);
    EXPECT_NE(std::string(e.what()).find("request line 1"), std::string::npos);
  }
  // The stream continues at the next line; numbering includes the reject.
  EXPECT_EQ(r.next(), std::optional<std::string>("ok"));
  EXPECT_EQ(r.line_no(), 3u);
  // An oversized line still open (no newline yet) is also rejected, and
  // its late-arriving tail is discarded without a second throw.
  r.feed("xxxxxxxxxxxxxxxxxxxx");
  EXPECT_THROW(r.next(), LineTooLongError);
  r.feed("yyyy\nafter\n");
  EXPECT_EQ(r.next(), std::optional<std::string>("after"));
}

TEST(LineReaderTest, TakePartialReportsAbruptDisconnect) {
  LineReader r;
  r.feed("flush\ninject G1");
  EXPECT_EQ(r.next(), std::optional<std::string>("flush"));
  EXPECT_FALSE(r.next().has_value());
  EXPECT_EQ(r.take_partial(), "inject G1");
  EXPECT_TRUE(r.take_partial().empty());  // consumed
}

TEST(LineReaderTest, GarbageBytesComeOutAsLines) {
  LineReader r;
  const std::string garbage = "\x01\x02\xff binary \x00 soup";
  r.feed(std::string(garbage) + "\n");
  EXPECT_EQ(r.next(), std::optional<std::string>(garbage));
}

// ---------- JSON field extraction -------------------------------------------

TEST(JsonFieldTest, ExtractsFlatStringAndIntegerFields) {
  const std::string line =
      "{\"ok\":\"queued\",\"pending\":3,\"msg\":\"a \\\"b\\\"\\n\"}";
  EXPECT_EQ(net::json_string_field(line, "ok"),
            std::optional<std::string>("queued"));
  EXPECT_EQ(net::json_u64_field(line, "pending"),
            std::optional<std::uint64_t>(3));
  EXPECT_EQ(net::json_string_field(line, "msg"),
            std::optional<std::string>("a \"b\"\n"));
  EXPECT_FALSE(net::json_string_field(line, "absent").has_value());
  EXPECT_FALSE(net::json_u64_field(line, "ok").has_value());
  const std::string overload = net::overloaded_json(17);
  EXPECT_EQ(net::json_string_field(overload, "error"),
            std::optional<std::string>("overloaded"));
  EXPECT_EQ(net::json_u64_field(overload, "retry_after_ms"),
            std::optional<std::uint64_t>(17));
}

// ---------- DiagnosisQueue admission control / shutdown ---------------------

TEST(QueueShutdownTest, DestructionPoisonsPendingJobsWithTypedError) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 48, 7);
  ScanSession inj(dut.nl, opts);
  inj.bind_patterns(pats);

  std::vector<std::future<DiagnosisResult>> futures;
  {
    DiagnosisQueue::Options qo;
    qo.max_batch = 1;  // one job per dispatcher round: a real backlog
    DiagnosisQueue queue(qo);
    const auto key = queue.open(dut.nl, opts, pats);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(
          queue.submit(key, inj.inject(dut.faults[(i * 37 + 5) %
                                                  dut.faults.size()])));
    }
    // Destroyed here with most of the backlog still queued.
  }
  std::size_t completed = 0, poisoned = 0;
  for (auto& f : futures) {
    // Every future must be ready NOW -- a broken promise or a hang is
    // the bug this guards against.
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    try {
      (void)f.get().num_candidates;
      ++completed;
    } catch (const QueueShutdownError& e) {
      EXPECT_NE(std::string(e.what()).find("drain()"), std::string::npos);
      ++poisoned;
    }
  }
  EXPECT_EQ(completed + poisoned, 16u);
  EXPECT_GE(poisoned, 1u) << "queue drained 16 jobs before its destructor "
                             "ran; backlog construction is broken";
}

TEST(QueueAdmissionTest, OpenWithIdenticalPatternsIsANoOpMidTraffic) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 48, 7);
  ScanSession inj(dut.nl, opts);
  inj.bind_patterns(pats);

  DiagnosisQueue queue;
  const auto key = queue.open(dut.nl, opts, pats);
  std::vector<std::future<DiagnosisResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(queue.submit(key, inj.inject(dut.faults[i * 31 + 2])));
  }
  // Re-registering the same design with the same patterns while jobs are
  // in flight must neither throw nor disturb them (every TCP connection
  // replays design+patterns on connect).
  EXPECT_EQ(queue.open(dut.nl, opts, pats), key);
  for (auto& f : futures) EXPECT_GT(f.get().num_faults, 0u);
  // Different patterns do require the design idle -- drain() makes it so
  // (a ready future only means the result was delivered; the dispatcher
  // clears the busy flag moments later).
  queue.drain();
  const auto pats2 = random_patterns(dut.nl, 48, 8);
  EXPECT_EQ(queue.open(dut.nl, opts, pats2), key);
}

TEST(QueueAdmissionTest, RejectPolicyThrowsTypedOverloadWithRetryHint) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 96, 7);
  ScanSession inj(dut.nl, opts);
  inj.bind_patterns(pats);
  ScanSession ref(dut.nl, opts);
  ref.bind_patterns(pats);

  DiagnosisQueue::Options qo;
  qo.max_batch = 1;
  qo.max_pending = 1;
  qo.overload = DiagnosisQueue::OverloadPolicy::Reject;
  qo.retry_hint_ms = 3;
  DiagnosisQueue queue(qo);
  const auto key = queue.open(dut.nl, opts, pats);

  std::uint64_t rejects = 0;
  std::vector<std::future<DiagnosisResult>> futures;
  std::vector<Evidence> evs;
  for (int i = 0; i < 12; ++i) {
    evs.push_back(inj.inject(dut.faults[(i * 53 + 11) % dut.faults.size()]));
  }
  for (const Evidence& ev : evs) {
    for (;;) {  // the retry loop DiagClient implements over the wire
      try {
        futures.push_back(queue.submit(key, ev));
        break;
      } catch (const OverloadError& e) {
        EXPECT_EQ(e.retry_after_ms(), 3u);
        ++rejects;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  EXPECT_GE(rejects, 1u) << "a 1-deep queue absorbed 12 back-to-back "
                            "submissions without a single reject";
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const DiagnosisResult got = futures[i].get();
    const DiagnosisResult want = ref.diagnose(evs[i]);
    ASSERT_EQ(got.num_candidates, want.num_candidates) << i;
    ASSERT_EQ(got.ranked.size(), want.ranked.size()) << i;
    for (std::size_t k = 0; k < got.ranked.size(); ++k) {
      EXPECT_EQ(got.ranked[k].fault_index, want.ranked[k].fault_index);
      EXPECT_EQ(got.ranked[k].tfsf, want.ranked[k].tfsf);
    }
  }
}

TEST(QueueAdmissionTest, BlockPolicyParksSubmittersAndLosesNothing) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 48, 7);
  ScanSession ref(dut.nl, opts);
  ref.bind_patterns(pats);

  DiagnosisQueue::Options qo;
  qo.max_batch = 1;
  qo.max_pending = 2;  // Block is the default policy
  DiagnosisQueue queue(qo);
  const auto key = queue.open(dut.nl, opts, pats);

  constexpr int kThreads = 4, kPer = 4;
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ScanSession inj(dut.nl, opts);
      inj.bind_patterns(pats);
      for (int i = 0; i < kPer; ++i) {
        const Fault& f =
            dut.faults[static_cast<std::size_t>(t * 131 + i * 17 + 3) %
                       dut.faults.size()];
        const DiagnosisResult got = queue.submit(key, inj.inject(f)).get();
        ScanSession check(dut.nl, opts);
        check.bind_patterns(pats);
        const DiagnosisResult want = check.diagnose(check.inject(f));
        EXPECT_EQ(got.num_candidates, want.num_candidates);
        ASSERT_EQ(got.ranked.size(), want.ranked.size());
        for (std::size_t k = 0; k < got.ranked.size(); ++k) {
          EXPECT_EQ(got.ranked[k].fault_index, want.ranked[k].fault_index);
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(done.load(), static_cast<std::size_t>(kThreads * kPer));
}

TEST(QueueAdmissionTest, RoundRobinDispatchAvoidsHeadOfLineBlocking) {
  const Dut a = make_dut("s344");
  const Dut b = make_dut("s27");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats_a = random_patterns(a.nl, 96, 7);
  const auto pats_b = random_patterns(b.nl, 32, 7);
  ScanSession inj_a(a.nl, opts);
  inj_a.bind_patterns(pats_a);
  ScanSession inj_b(b.nl, opts);
  inj_b.bind_patterns(pats_b);

  DiagnosisQueue::Options qo;
  qo.max_batch = 1;
  qo.pool_capacity = 2;
  DiagnosisQueue queue(qo);
  const auto key_a = queue.open(a.nl, opts, pats_a);
  const auto key_b = queue.open(b.nl, opts, pats_b);

  // A deep backlog for design A, then one job for design B. Round-robin
  // dispatch must slot B in after at most one more A batch -- under the
  // old oldest-first global FIFO, B waited behind all 24.
  std::vector<std::future<DiagnosisResult>> backlog;
  for (int i = 0; i < 24; ++i) {
    backlog.push_back(
        queue.submit(key_a, inj_a.inject(a.faults[(i * 37 + 5) %
                                                  a.faults.size()])));
  }
  std::future<DiagnosisResult> fb =
      queue.submit(key_b, inj_b.inject(b.faults[3]));
  EXPECT_GT(fb.get().num_faults, 0u);
  std::size_t a_still_pending = 0;
  for (auto& f : backlog) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      ++a_still_pending;
    }
  }
  EXPECT_GE(a_still_pending, 1u)
      << "design B's job finished only after A's entire backlog -- "
         "round-robin dispatch is not interleaving designs";
  for (auto& f : backlog) EXPECT_GT(f.get().num_faults, 0u);
}

// ---------- TCP end to end ---------------------------------------------------

/// Raw line-oriented wire access for the framing/shutdown tests (the
/// DiagClient hides exactly the failure modes these tests create).
struct RawWire {
  net::Connection conn;
  LineReader reader;

  explicit RawWire(std::uint16_t port)
      : conn(net::Connection::connect("127.0.0.1", port, 5'000)) {
    conn.set_read_timeout(30'000);
    conn.set_write_timeout(30'000);
  }
  void send(std::string_view bytes) { conn.write_all(bytes); }
  /// Next response line; empty optional on EOF.
  std::optional<std::string> read_line() {
    char buf[4096];
    for (;;) {
      if (auto line = reader.next(); line.has_value()) return line;
      const std::size_t n = conn.read_some(buf, sizeof(buf));
      if (n == 0) return std::nullopt;
      reader.feed(std::string_view(buf, n));
    }
  }
};

TEST(NetServerTest, TcpResultsByteIdenticalToInProcessAcrossConfigs) {
  const Dut dut = make_dut("s344");
  const int grid[] = {1, 4};
  for (int bw : grid) {
    for (int th : grid) {
      SCOPED_TRACE("W=" + std::to_string(bw) + " T=" + std::to_string(th));
      const FlowOptions opts = make_opts(bw, th);
      const auto pats = random_patterns(dut.nl, 64, 11);

      // In-process reference: sequential session + the shared serializer.
      ScanSession ref(dut.nl, opts);
      ref.bind_patterns(pats);
      const Fault& f_log = dut.faults[5];
      const Fault& f_sig = dut.faults[42 % dut.faults.size()];
      const Fault& f_inj = dut.faults[77 % dut.faults.size()];
      const std::string flog_path = temp_path("id.flog");
      const std::string slog_path = temp_path("id.slog");
      save_failure_log_file(flog_path, ref.inject(f_log));
      save_signature_log_file(slog_path, ref.inject_compacted(f_sig));
      const std::string inj_str = f_inj.to_string(dut.nl);

      std::vector<std::string> expected;
      expected.push_back(net::result_json(
          ref.diagnose(ref.inject(f_log)), dut.nl, dut.nl.name(),
          "log " + flog_path, pats.size(), 5));
      expected.push_back(net::result_json(
          ref.diagnose(ref.inject_compacted(f_sig)), dut.nl, dut.nl.name(),
          "signature-log " + slog_path, pats.size(), 5));
      expected.push_back(net::result_json(
          ref.diagnose(ref.inject(f_inj)), dut.nl, dut.nl.name(),
          "inject " + inj_str, pats.size(), 5));
      expected.push_back(net::result_json(
          ref.diagnose(ref.inject(dut.faults[9])), dut.nl, dut.nl.name(),
          "inject-index 9", pats.size(), 5));

      // The same traffic over loopback TCP.
      DiagnosisQueue queue;
      net::NetServer::Options nopts;
      nopts.service.flow = opts;
      net::NetServer server(queue, nullptr, nopts);
      DiagClient client("127.0.0.1", server.port());
      EXPECT_EQ(net::json_string_field(client.design(dut.bench_path), "ok"),
                std::optional<std::string>("design"));
      EXPECT_EQ(net::json_u64_field(client.patterns(pats.size(), 11),
                                    "num_patterns"),
                std::optional<std::uint64_t>(pats.size()));
      client.submit("log " + flog_path);
      client.submit("signature-log " + slog_path);
      client.submit("inject " + inj_str);
      client.submit("inject-index 9");
      EXPECT_EQ(client.queued(), 4u);
      const std::vector<std::string> got = client.flush();
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected[i]) << "result " << i;
      }
      client.quit();
      server.shutdown();
    }
  }
}

TEST(NetServerTest, FramingHardeningOverTcp) {
  const Dut dut = make_dut("s27");
  DiagnosisQueue queue;
  Telemetry telem;
  net::NetServer::Options nopts;
  nopts.max_line = 128;
  net::NetServer server(queue, &telem, nopts);

  {
    RawWire w(server.port());
    // Garbage bytes are a framed line: answered, not fatal.
    w.send("\x01\xfegarbage\x7f\n");
    auto resp = w.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(net::json_string_field(*resp, "error").has_value());
    EXPECT_EQ(net::json_u64_field(*resp, "line"),
              std::optional<std::uint64_t>(1));
    // An oversized line: typed reject naming its line number, stream
    // survives.
    w.send(std::string(300, 'x') + "\n");
    resp = w.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_NE(resp->find("exceeds 128 bytes"), std::string::npos);
    EXPECT_EQ(net::json_u64_field(*resp, "line"),
              std::optional<std::uint64_t>(2));
    // Split writes: one command drip-fed across segments.
    const std::string cmd = "design " + dut.bench_path + "\n";
    for (std::size_t i = 0; i < cmd.size(); i += 3) {
      w.send(std::string_view(cmd).substr(i, 3));
    }
    resp = w.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(net::json_string_field(*resp, "ok"),
              std::optional<std::string>("design"));
    // Coalesced writes: several commands in one segment, answered in
    // order with correct line attribution.
    w.send("patterns 16 7\nbogus-command\nstats\n");
    resp = w.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(net::json_string_field(*resp, "ok"),
              std::optional<std::string>("patterns"));
    resp = w.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(net::json_string_field(*resp, "error"),
              std::optional<std::string>("unknown command: bogus-command"));
    EXPECT_EQ(net::json_u64_field(*resp, "line"),
              std::optional<std::uint64_t>(5));
    resp = w.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(net::json_string_field(*resp, "ok"),
              std::optional<std::string>("stats"));
    // Mid-command disconnect: a half-written line, then gone.
    w.send("inject N1");
    w.conn.shutdown_both();
  }
  // The server survived all of it: a fresh connection still works.
  {
    RawWire w2(server.port());
    w2.send("stats\n");
    auto resp = w2.read_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(net::json_string_field(*resp, "ok"),
              std::optional<std::string>("stats"));
    // The torn command was counted as a framing error, not executed.
    EXPECT_NE(resp->find("\"net.framing_errors\":"), std::string::npos);
  }
  server.shutdown();
}

TEST(NetServerTest, ConnectionCapRejectsExcessClients) {
  DiagnosisQueue queue;
  Telemetry telem;
  net::NetServer::Options nopts;
  nopts.max_connections = 1;
  net::NetServer server(queue, &telem, nopts);

  RawWire first(server.port());
  first.send("stats\n");
  ASSERT_TRUE(first.read_line().has_value());  // slot is live and serving
  RawWire second(server.port());
  auto resp = second.read_line();
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(net::json_string_field(*resp, "error")
                .value_or("")
                .find("too many connections"),
            std::string::npos);
  EXPECT_FALSE(second.read_line().has_value());  // then closed
  // Releasing the slot admits the next client.
  first.conn.shutdown_both();
  for (int attempt = 0;; ++attempt) {
    RawWire retry(server.port());
    retry.send("stats\n");
    auto r = retry.read_line();
    ASSERT_TRUE(r.has_value());
    if (net::json_string_field(*r, "ok").has_value()) break;
    ASSERT_LT(attempt, 100) << "slot never freed after disconnect";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.shutdown();
}

TEST(NetServerTest, OverloadFloodBackoffClientCompletesEverything) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 96, 7);
  ScanSession ref(dut.nl, opts);
  ref.bind_patterns(pats);

  Telemetry telem;
  DiagnosisQueue::Options qo;
  qo.max_batch = 1;
  qo.max_pending = 1;  // pathologically tight: every burst must reject
  qo.overload = DiagnosisQueue::OverloadPolicy::Reject;
  qo.retry_hint_ms = 2;
  DiagnosisQueue queue(qo, &telem);

  net::NetServer::Options nopts;
  nopts.service.flow = opts;
  net::NetServer server(queue, &telem, nopts);

  // Per-client fault picks and their sequential reference results,
  // computed up front -- `ref` is a single-threaded session and must not
  // be shared by the worker threads below.
  constexpr int kClients = 4, kPer = 5;
  std::vector<std::vector<std::size_t>> idx(kClients);
  std::vector<std::vector<std::string>> expect(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPer; ++i) {
      const std::size_t p = static_cast<std::size_t>(c * 101 + i * 37 + 5) %
                            dut.faults.size();
      idx[static_cast<std::size_t>(c)].push_back(p);
      expect[static_cast<std::size_t>(c)].push_back(net::result_json(
          ref.diagnose(ref.inject(dut.faults[p])), dut.nl, dut.nl.name(),
          "inject-index " + std::to_string(p), pats.size(), 5));
    }
  }

  std::atomic<std::uint64_t> total_retries{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      DiagClient::Options copts;
      copts.seed = 0xbeef + static_cast<std::uint64_t>(c);
      copts.max_retries = 500;  // the flood outlasts the default budget
      copts.backoff_base_ms = 1;
      copts.backoff_max_ms = 20;
      DiagClient client("127.0.0.1", server.port(), copts);
      client.design(dut.bench_path);
      client.patterns(pats.size(), 7);
      for (const std::size_t p : idx[static_cast<std::size_t>(c)]) {
        const std::string resp =
            client.submit("inject-index " + std::to_string(p));
        EXPECT_EQ(net::json_string_field(resp, "ok"),
                  std::optional<std::string>("queued"));
      }
      const std::vector<std::string> results = client.flush();
      ASSERT_EQ(results.size(), static_cast<std::size_t>(kPer));
      for (int i = 0; i < kPer; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(c)]
                        [static_cast<std::size_t>(i)]);
      }
      total_retries.fetch_add(client.overload_retries(),
                              std::memory_order_relaxed);
      client.quit();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GE(total_retries.load(), 1u)
      << "4 clients flooding a 1-deep Reject queue never got rejected";
  const MetricsSnapshot snap = telem.metrics.snapshot();
  EXPECT_GE(snap.counter(CounterId::kQueueRejected), total_retries.load());
  server.shutdown();
}

TEST(NetServerTest, GracefulShutdownDrainsAndAnswersPendingWork) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 64, 7);
  ScanSession ref(dut.nl, opts);
  ref.bind_patterns(pats);

  DiagnosisQueue::Options qo;
  qo.max_batch = 1;
  DiagnosisQueue queue(qo);
  net::NetServer::Options nopts;
  nopts.service.flow = opts;
  net::NetServer server(queue, nullptr, nopts);

  RawWire w(server.port());
  w.send("design " + dut.bench_path + "\npatterns 64 7\n");
  ASSERT_TRUE(w.read_line().has_value());
  ASSERT_TRUE(w.read_line().has_value());
  w.send("inject-index 5\ninject-index 9\n");
  for (int i = 0; i < 2; ++i) {
    auto ack = w.read_line();
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(net::json_string_field(*ack, "ok"),
              std::optional<std::string>("queued"));
  }

  // Shut down with two futures pending and no flush sent. The drain
  // must answer both (plus a flush terminator), then close cleanly.
  server.shutdown();
  EXPECT_EQ(server.active_connections(), 0u);

  std::vector<std::string> lines;
  for (;;) {
    auto line = w.read_line();
    if (!line.has_value()) break;  // EOF: server closed after the drain
    lines.push_back(std::move(*line));
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], net::result_json(ref.diagnose(ref.inject(dut.faults[5])),
                                       dut.nl, dut.nl.name(), "inject-index 5",
                                       pats.size(), 5));
  EXPECT_EQ(lines[1], net::result_json(ref.diagnose(ref.inject(dut.faults[9])),
                                       dut.nl, dut.nl.name(), "inject-index 9",
                                       pats.size(), 5));
  EXPECT_EQ(net::json_string_field(lines[2], "ok"),
            std::optional<std::string>("flush"));
  EXPECT_EQ(net::json_u64_field(lines[2], "results"),
            std::optional<std::uint64_t>(2));
}

TEST(NetServerTest, StatsExposesQueueDepthAndNetCounters) {
  const Dut dut = make_dut("s344");
  const FlowOptions opts = make_opts(4, 1);
  const auto pats = random_patterns(dut.nl, 96, 7);
  ScanSession inj(dut.nl, opts);
  inj.bind_patterns(pats);

  Telemetry telem;
  DiagnosisQueue::Options qo;
  qo.max_batch = 1;
  DiagnosisQueue queue(qo, &telem);

  // The queue.depth gauge tracks queued + in-flight jobs: nonzero while
  // a backlog exists, back to zero once everything is answered. (The
  // stats serializers omit zero-valued metrics, so the gauge is only
  // visible on the wire while work is pending -- assert on the snapshot
  // where the timing is deterministic.)
  const auto key = queue.open(dut.nl, opts, pats);
  std::vector<std::future<DiagnosisResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(queue.submit(key, inj.inject(dut.faults[i * 29 + 1])));
  }
  EXPECT_GE(telem.metrics.snapshot().gauge(GaugeId::kQueueDepth), 1);
  for (auto& f : futures) (void)f.get();
  queue.drain();
  EXPECT_EQ(telem.metrics.snapshot().gauge(GaugeId::kQueueDepth), 0);

  net::NetServer::Options nopts;
  nopts.service.flow = opts;
  net::NetServer server(queue, &telem, nopts);
  DiagClient client("127.0.0.1", server.port());
  client.design(dut.bench_path);
  client.patterns(16, 7);
  client.submit("inject-index 1");
  client.flush();
  const std::string stats = client.request("stats");
  EXPECT_EQ(net::json_string_field(stats, "ok"),
            std::optional<std::string>("stats"));
  for (const char* k :
       {"\"queue.submitted\":", "\"net.accepted\":", "\"net.requests\":",
        "\"net.bytes_in\":", "\"net.bytes_out\":",
        "\"net.active_connections\":", "\"net.request_us\":"}) {
    EXPECT_NE(stats.find(k), std::string::npos) << k << "\n" << stats;
  }
  client.quit();
  server.shutdown();
}

}  // namespace
}  // namespace scanpower
