#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/benchgen.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/gate_types.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "util/assert.hpp"

namespace scanpower {
namespace {

TEST(GateTypes, NamesRoundTrip) {
  for (int t = 0; t < kNumGateTypes; ++t) {
    const GateType type = static_cast<GateType>(t);
    const auto parsed = gate_type_from_name(gate_type_name(type));
    ASSERT_TRUE(parsed.has_value()) << gate_type_name(type);
    EXPECT_EQ(*parsed, type);
  }
}

TEST(GateTypes, AliasesAccepted) {
  EXPECT_EQ(gate_type_from_name("buff"), GateType::Buf);
  EXPECT_EQ(gate_type_from_name("inv"), GateType::Not);
  EXPECT_EQ(gate_type_from_name("nand"), GateType::Nand);
  EXPECT_FALSE(gate_type_from_name("bogus").has_value());
}

TEST(GateTypes, ControllingValues) {
  EXPECT_EQ(controlling_value(GateType::And), false);
  EXPECT_EQ(controlling_value(GateType::Nand), false);
  EXPECT_EQ(controlling_value(GateType::Or), true);
  EXPECT_EQ(controlling_value(GateType::Nor), true);
  EXPECT_FALSE(controlling_value(GateType::Xor).has_value());
  EXPECT_FALSE(controlling_value(GateType::Not).has_value());
}

TEST(GateTypes, ControlledOutputs) {
  EXPECT_EQ(controlled_output(GateType::And), false);
  EXPECT_EQ(controlled_output(GateType::Nand), true);
  EXPECT_EQ(controlled_output(GateType::Or), true);
  EXPECT_EQ(controlled_output(GateType::Nor), false);
}

TEST(GateTypes, SymmetryAndInversion) {
  EXPECT_TRUE(is_symmetric(GateType::Nand));
  EXPECT_TRUE(is_symmetric(GateType::Xor));
  EXPECT_FALSE(is_symmetric(GateType::Mux));
  EXPECT_FALSE(is_symmetric(GateType::Not));
  EXPECT_TRUE(is_inverting(GateType::Nor));
  EXPECT_FALSE(is_inverting(GateType::Or));
}

Netlist tiny_netlist() {
  // a, b -> g1 = NAND(a,b); g2 = NOT(g1); PO g2; one DFF fed by g1.
  NetlistBuilder b("tiny");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Nand, "g1", {"a", "b"});
  b.add_gate(GateType::Not, "g2", {"g1"});
  b.add_gate(GateType::Dff, "q", {"g1"});
  b.add_output("g2");
  return b.link();
}

TEST(Netlist, BasicStructure) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.num_gates(), 5u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  const GateId g1 = nl.find("g1");
  ASSERT_NE(g1, kInvalidGate);
  EXPECT_EQ(nl.type(g1), GateType::Nand);
  EXPECT_EQ(nl.fanins(g1).size(), 2u);
  EXPECT_EQ(nl.fanouts(g1).size(), 2u);  // g2 and q
}

TEST(Netlist, LevelsAndTopo) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.level(nl.find("a")), 0u);
  EXPECT_EQ(nl.level(nl.find("g1")), 1u);
  EXPECT_EQ(nl.level(nl.find("g2")), 2u);
  EXPECT_EQ(nl.depth(), 2u);
  // topo: fanins precede fanouts.
  const auto& topo = nl.topo_order();
  std::vector<std::size_t> pos(nl.num_gates(), 0);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (GateId id : topo) {
    for (GateId f : nl.fanins(id)) {
      if (is_combinational(nl.type(f))) {
        EXPECT_LT(pos[f], pos[id]);
      }
    }
  }
}

TEST(Netlist, ForwardReferencesResolve) {
  NetlistBuilder b("fwd");
  b.add_input("x");
  b.add_gate(GateType::Not, "n1", {"n2"});  // n2 defined later
  b.add_gate(GateType::Not, "n2", {"x"});
  b.add_output("n1");
  const Netlist nl = b.link();
  EXPECT_EQ(nl.level(nl.find("n1")), 2u);
}

TEST(Netlist, DuplicateNameRejected) {
  NetlistBuilder b("dup");
  b.add_input("x");
  b.add_gate(GateType::Not, "x", {"x"});
  EXPECT_THROW(b.link(), Error);
}

TEST(Netlist, UndefinedNetRejected) {
  NetlistBuilder b("undef");
  b.add_input("x");
  b.add_gate(GateType::Not, "y", {"nope"});
  EXPECT_THROW(b.link(), Error);
}

TEST(Netlist, CombinationalCycleRejected) {
  NetlistBuilder b("cyc");
  b.add_input("x");
  b.add_gate(GateType::Nand, "g1", {"x", "g2"});
  b.add_gate(GateType::Nand, "g2", {"x", "g1"});
  b.add_output("g2");
  EXPECT_THROW(b.link(), Error);
}

TEST(Netlist, SequentialLoopAllowed) {
  // FF in the loop breaks the combinational cycle: legal.
  NetlistBuilder b("seq");
  b.add_input("x");
  b.add_gate(GateType::Dff, "q", {"g"});
  b.add_gate(GateType::Nand, "g", {"x", "q"});
  b.add_output("g");
  EXPECT_NO_THROW(b.link());
}

TEST(Netlist, ArityChecked) {
  NetlistBuilder b("arity");
  b.add_input("x");
  b.add_gate(GateType::Nand, "g", {"x"});  // NAND needs >= 2
  EXPECT_THROW(b.link(), Error);
}

TEST(Netlist, PermuteFaninsSwaps) {
  Netlist nl = tiny_netlist();
  const GateId g1 = nl.find("g1");
  const auto before = nl.fanins(g1);
  nl.permute_fanins(g1, {1, 0});
  EXPECT_EQ(nl.fanins(g1)[0], before[1]);
  EXPECT_EQ(nl.fanins(g1)[1], before[0]);
}

TEST(Netlist, PermuteRejectsNonPermutation) {
  Netlist nl = tiny_netlist();
  EXPECT_THROW(nl.permute_fanins(nl.find("g1"), {0, 0}), Error);
  EXPECT_THROW(nl.permute_fanins(nl.find("g1"), {0}), Error);
}

TEST(BenchIo, ParsesS27) {
  const Netlist nl = make_s27();
  const NetlistStats st = compute_stats(nl);
  EXPECT_EQ(st.num_inputs, 4u);
  EXPECT_EQ(st.num_outputs, 1u);
  EXPECT_EQ(st.num_dffs, 3u);
  EXPECT_EQ(st.num_comb_gates, 10u);
}

TEST(BenchIo, RoundTrip) {
  const Netlist nl = make_s27();
  const std::string text = write_bench_string(nl);
  const Netlist nl2 = parse_bench_string(text, "s27rt");
  EXPECT_EQ(nl2.num_gates(), nl.num_gates());
  EXPECT_EQ(nl2.inputs().size(), nl.inputs().size());
  EXPECT_EQ(nl2.dffs().size(), nl.dffs().size());
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const GateId id2 = nl2.find(nl.gate_name(id));
    ASSERT_NE(id2, kInvalidGate) << nl.gate_name(id);
    EXPECT_EQ(nl2.type(id2), nl.type(id));
    EXPECT_EQ(nl2.fanins(id2).size(), nl.fanins(id).size());
  }
}

TEST(BenchIo, CommentsAndBlanksIgnored) {
  const Netlist nl = parse_bench_string(
      "# header\n\nINPUT(a)\n  # inline\nOUTPUT(b)\nb = NOT(a) # trailing\n",
      "c");
  EXPECT_EQ(nl.num_gates(), 2u);
}

TEST(BenchIo, SingleInputAndBecomesBuf) {
  const Netlist nl =
      parse_bench_string("INPUT(a)\nOUTPUT(b)\nb = AND(a)\n", "c");
  EXPECT_EQ(nl.type(nl.find("b")), GateType::Buf);
}

TEST(BenchIo, SingleInputNorBecomesNot) {
  const Netlist nl =
      parse_bench_string("INPUT(a)\nOUTPUT(b)\nb = NOR(a)\n", "c");
  EXPECT_EQ(nl.type(nl.find("b")), GateType::Not);
}

TEST(BenchIo, MalformedLinesThrow) {
  EXPECT_THROW(parse_bench_string("INPUT a\n", "c"), ParseError);
  EXPECT_THROW(parse_bench_string("b = FROB(a)\n", "c"), ParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nb = NOT(zz)\n", "c"), ParseError);
  EXPECT_THROW(parse_bench_string(" = NOT(a)\n", "c"), ParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a, b)\n", "c"), ParseError);
}

TEST(BenchIo, InputAsGateRejected) {
  EXPECT_THROW(parse_bench_string("x = INPUT(y)\n", "c"), ParseError);
}

TEST(Levelize, FaninCone) {
  const Netlist nl = make_s27();
  const auto cone = fanin_cone(nl, {nl.find("G17")});
  // G17 = NOT(G11); G11 = NOR(G5, G9); ... reaches back to inputs.
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("G11")), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("G5")), cone.end());
}

TEST(Levelize, ReachabilityStopsAtDff) {
  const Netlist nl = make_s27();
  const auto mask = reachable_from(nl, {nl.find("G0")});
  // G0 -> G14 -> G8/G10 ... combinational reach.
  EXPECT_TRUE(mask[nl.find("G14")]);
  EXPECT_TRUE(mask[nl.find("G8")]);
  // G5 is a DFF fed by G10: marked as a sink but its fanouts must not be
  // reached *through* it. G5 feeds G11; G11 is reachable through other
  // paths, so check a DFF whose only contribution is sequential: G7.
  EXPECT_TRUE(mask[nl.find("G10")]);
}

TEST(Stats, ToStringMentionsCounts) {
  const Netlist nl = make_s27();
  const std::string s = compute_stats(nl).to_string();
  EXPECT_NE(s.find("PI=4"), std::string::npos);
  EXPECT_NE(s.find("FF=3"), std::string::npos);
}

}  // namespace
}  // namespace scanpower

namespace scanpower {
namespace {

TEST(Netlist, ReplaceUsesRewiresAllReaders) {
  NetlistBuilder b("ru");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Not, "n1", {"a"});
  b.add_gate(GateType::Nand, "g1", {"n1", "c"});
  b.add_gate(GateType::Nor, "g2", {"n1", "g1"});
  b.add_output("g2");
  Netlist nl = b.link();
  nl.replace_uses(nl.find("n1"), nl.find("c"));
  nl.finalize();
  EXPECT_EQ(nl.fanins(nl.find("g1"))[0], nl.find("c"));
  EXPECT_EQ(nl.fanins(nl.find("g2"))[0], nl.find("c"));
  EXPECT_TRUE(nl.fanouts(nl.find("n1")).empty());
}

TEST(BenchIo, EmptyFileParsesToEmptyNetlist) {
  const Netlist nl = parse_bench_string("", "empty");
  EXPECT_EQ(nl.num_gates(), 0u);
  EXPECT_TRUE(nl.finalized());
}

TEST(BenchIo, OutputBeforeDefinitionOk) {
  const Netlist nl =
      parse_bench_string("OUTPUT(y)\nINPUT(a)\ny = NOT(a)\n", "c");
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(BenchIo, DffChainsParse) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(q2)\nq1 = DFF(a)\nq2 = DFF(q1)\n", "ffchain");
  EXPECT_EQ(nl.dffs().size(), 2u);
  // q1 -> q2 is a sequential edge; both are level-0 sources.
  EXPECT_EQ(nl.level(nl.find("q1")), 0u);
  EXPECT_EQ(nl.level(nl.find("q2")), 0u);
}

TEST(Netlist, MarkOutputIdempotent) {
  NetlistBuilder b("po");
  b.add_input("a");
  b.add_gate(GateType::Not, "y", {"a"});
  b.add_output("y");
  Netlist nl = b.link();
  nl.mark_output(nl.find("y"));  // second time
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Levelize, FanoutConeIncludesSinkDffs) {
  const Netlist nl = make_s27();
  // G12 = NOR(G1, G7) feeds G13/G15; G13 feeds DFF G7.
  const auto cone = fanout_cone(nl, {nl.find("G12")});
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("G13")), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("G7")), cone.end());
}

}  // namespace
}  // namespace scanpower
