// Noise-robust diagnosis: the tester-noise model, exact multi-fault
// injection, multiplet suspect sets and the union-pruning fallback.
//
// Acceptance criteria for the subsystem, checked across every benchgen
// profile:
//  (a) injected detected fault pairs are recovered in the top suspect set
//      (up to single-fault-log equivalence) in >= 90% of trials;
//  (b) single faults diagnosed from a log under seeded 5% drop + 5% flip
//      corruption still rank top-3 in >= 90% of trials;
//  (c) rankings AND suspect sets are bit-identical across every
//      (block_words, num_threads) in {1,4} x {1,4};
//  (d) malformed logs yield typed line-numbered errors (test_diag.cpp /
//      test_compact.cpp cover the text loaders; the in-memory session
//      check is covered here).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "compact/signature_log.hpp"
#include "core/session.hpp"
#include "diag/diagnose.hpp"
#include "diag/noise.hpp"
#include "diag/response.hpp"
#include "netlist/builder.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

bool same_failures(const FailureLog& a, const FailureLog& b) {
  return a.num_patterns == b.num_patterns && a.failures == b.failures;
}

/// A synthetic "big" failure log for calibration tests: `n` failing
/// records spread over a (patterns x points) space much larger than n.
FailureLog big_log(std::size_t n, std::size_t num_patterns,
                   std::size_t num_points) {
  FailureLog log;
  log.num_patterns = num_patterns;
  Rng rng(0xb16);
  while (log.failures.size() < n) {
    const std::uint32_t p =
        static_cast<std::uint32_t>(rng.next_below(num_patterns));
    const std::uint32_t op =
        static_cast<std::uint32_t>(rng.next_below(num_points));
    log.failures.push_back({p, op});
    log.normalize();  // dedupe as we go; cheap at this size
  }
  return log;
}

// ---------- noise model -----------------------------------------------------

TEST(NoiseModelTest, ZeroRatesAreIdentity) {
  const FailureLog log = big_log(200, 64, 50);
  NoiseStats st;
  const FailureLog out = NoiseModel(NoiseOptions{}).corrupt(log, 50, &st);
  EXPECT_TRUE(same_failures(out, log));
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.flipped, 0u);
}

TEST(NoiseModelTest, RatesAreValidated) {
  EXPECT_THROW(NoiseModel(NoiseOptions{.drop_rate = -0.1}), Error);
  EXPECT_THROW(NoiseModel(NoiseOptions{.drop_rate = 1.5}), Error);
  EXPECT_THROW(NoiseModel(NoiseOptions{.flip_rate = 2.0}), Error);
}

TEST(NoiseModelTest, SameSeedSameCorruption) {
  const FailureLog log = big_log(300, 100, 64);
  const NoiseModel a(NoiseOptions{.drop_rate = 0.2, .flip_rate = 0.1,
                                  .seed = 0xabc});
  const NoiseModel b(NoiseOptions{.drop_rate = 0.2, .flip_rate = 0.1,
                                  .seed = 0xabc});
  const NoiseModel c(NoiseOptions{.drop_rate = 0.2, .flip_rate = 0.1,
                                  .seed = 0xdef});
  EXPECT_TRUE(same_failures(a.corrupt(log, 64), b.corrupt(log, 64)));
  EXPECT_TRUE(same_failures(a.corrupt(log, 64), a.corrupt(log, 64)));
  EXPECT_FALSE(same_failures(a.corrupt(log, 64), c.corrupt(log, 64)));
}

TEST(NoiseModelTest, DropAndFlipAreCalibrated) {
  const std::size_t n = 2000;
  const FailureLog log = big_log(n, 400, 80);
  NoiseStats st;
  const NoiseModel nm(NoiseOptions{.drop_rate = 0.3, .flip_rate = 0.1});
  const FailureLog out = nm.corrupt(log, 80, &st);
  // Flips are budgeted exactly; drops are per-record Bernoulli(0.3), so a
  // 2000-record log stays within +-50% of the mean with huge margin.
  EXPECT_EQ(st.flipped, static_cast<std::size_t>(std::llround(0.1 * n)));
  EXPECT_GT(st.dropped, n * 3 / 20);  // > 0.15n
  EXPECT_LT(st.dropped, n * 9 / 20);  // < 0.45n
  EXPECT_EQ(out.failures.size(), n - st.dropped + st.flipped);
  // Corruption never fabricates out-of-range records or duplicates.
  FailureLog renorm = out;
  renorm.normalize();
  EXPECT_TRUE(same_failures(renorm, out));
  for (const Failure& f : out.failures) {
    EXPECT_LT(f.pattern, 400u);
    EXPECT_LT(f.op, 80u);
  }
}

TEST(NoiseModelTest, SignatureCorruption) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  SignatureCapture cap(nl, MisrConfig{}, 4);
  const SignatureLog log = cap.inject(pats, faults[7]);
  ASSERT_GT(log.num_failing_windows(), 0u);

  // drop_rate 1 makes every failing window read back as passing.
  NoiseStats st;
  const SignatureLog clean =
      NoiseModel(NoiseOptions{.drop_rate = 1.0}).corrupt(log, &st);
  EXPECT_EQ(st.dropped, log.num_failing_windows());
  EXPECT_EQ(clean.num_failing_windows(), 0u);
  EXPECT_EQ(clean.expected, log.expected);

  // Flips garble windows but respect the MISR width; same seed, same log.
  const NoiseModel nm(NoiseOptions{.flip_rate = 1.0});
  NoiseStats st2;
  const SignatureLog noisy = nm.corrupt(log, &st2);
  EXPECT_EQ(st2.flipped, log.num_windows());
  EXPECT_NE(noisy.observed, log.observed);
  const std::uint64_t width_mask =
      log.misr.width >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << log.misr.width) - 1);
  for (std::size_t w = 0; w < noisy.num_windows(); ++w) {
    EXPECT_EQ(noisy.observed[w] & ~width_mask, 0u);
  }
  EXPECT_EQ(nm.corrupt(log).observed, noisy.observed);
}

// corrupt_text() duplicates record lines of a saved log; the strict
// loaders must refuse the duplicate with a line-numbered error instead of
// silently double-counting.
TEST(NoiseModelTest, CorruptTextIsRejectedByTheStrictLoader) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  const FailureLog log = cap.inject(pats, faults[7]);
  ASSERT_GT(log.failures.size(), 1u);
  std::stringstream ss;
  save_failure_log(ss, log);
  const std::string dup =
      NoiseModel(NoiseOptions{.flip_rate = 1.0}).corrupt_text(ss.str());
  ASSERT_NE(dup, ss.str());
  std::stringstream back(dup);
  try {
    load_failure_log(back);
    FAIL() << "duplicated text log accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

// ---------- exact multi-fault injection -------------------------------------

TEST(MultiFaultInjectTest, SingleElementSpanMatchesSingleInject) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  for (std::size_t fi : {7u, 100u, 301u, 500u}) {
    ASSERT_LT(fi, faults.size());
    const Fault f = faults[fi];
    const FailureLog single = cap.inject(pats, f);
    const FailureLog span = cap.inject(pats, std::span<const Fault>(&f, 1));
    EXPECT_TRUE(same_failures(single, span)) << f.to_string(nl);
  }
}

TEST(MultiFaultInjectTest, DuplicatesCollapseAndContradictionsThrow) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  const Fault f = faults[100];
  const std::vector<Fault> dup = {f, f};
  EXPECT_TRUE(same_failures(cap.inject(pats, std::span<const Fault>(dup)),
                            cap.inject(pats, f)));
  const Fault opposite{f.gate, f.pin, !f.stuck_at};
  const std::vector<Fault> contradiction = {f, opposite};
  EXPECT_THROW(cap.inject(pats, std::span<const Fault>(contradiction)), Error);
}

// A downstream stuck output hides an upstream fault completely: the pair
// log must equal the downstream fault's log, NOT the XOR superposition of
// the two single-fault logs (which would predict failures on every
// pattern here).
TEST(MultiFaultInjectTest, DownstreamFaultMasksUpstream) {
  NetlistBuilder b("mask1");
  b.add_input("a");
  b.add_gate(GateType::Not, "g", {"a"});
  b.add_output("g");
  const Netlist nl = b.link();
  const GateId g = nl.find("g");

  std::vector<TestPattern> pats(2);
  pats[0].pi = {Logic::Zero};
  pats[1].pi = {Logic::One};

  const Fault upstream{g, 0, false};    // g.in0/sa0: fails when a = 1
  const Fault downstream{g, -1, false}; // g/sa0:     fails when a = 0
  ResponseCapture cap(nl, 1);
  const FailureLog up = cap.inject(pats, upstream);
  const FailureLog down = cap.inject(pats, downstream);
  ASSERT_EQ(up.failures.size(), 1u);
  ASSERT_EQ(down.failures.size(), 1u);
  ASSERT_NE(up.failures[0].pattern, down.failures[0].pattern);

  const std::vector<Fault> pair = {upstream, downstream};
  const FailureLog both = cap.inject(pats, std::span<const Fault>(pair));
  EXPECT_TRUE(same_failures(both, down))
      << "expected the downstream stuck-at to mask the upstream fault";
}

TEST(MultiFaultInjectTest, PairLogsBitIdenticalAcrossBlockWidths) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  Rng rng(0x9a12);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<Fault> pair = {faults[rng.next_below(faults.size())],
                                     faults[rng.next_below(faults.size())]};
    if (pair[0].gate == pair[1].gate) continue;  // avoid contradictions
    FailureLog ref;
    bool have_ref = false;
    for (int words : {1, 2, 4, 8}) {
      ResponseCapture cap(nl, words);
      const FailureLog log = cap.inject(pats, std::span<const Fault>(pair));
      if (!have_ref) {
        ref = log;
        have_ref = true;
        continue;
      }
      ASSERT_TRUE(same_failures(log, ref)) << "W=" << words;
    }
  }
}

TEST(MultiFaultInjectTest, CompactedPairUsesMisrLinearity) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  const std::vector<Fault> pair = {faults[100], faults[301]};

  // observed ^ expected of the compacted pair log must equal the MISR
  // signature of the pair's response diff -- computed here independently
  // through the full-response injector and the compactor.
  SignatureCapture scap(nl, MisrConfig{}, 4);
  const SignatureLog slog =
      scap.inject(pats, std::span<const Fault>(pair));
  ResponseCapture cap(nl, 4);
  const FailureLog flog = cap.inject(pats, std::span<const Fault>(pair));
  MisrCompactor compactor(slog.misr, 4);
  XMaskPlan mask(nl, cap.points(), pats, slog.misr.window, 4);
  const std::vector<std::uint64_t> diff_sigs =
      compactor.compact(flog.to_matrix(cap.points().size()), &mask);
  ASSERT_EQ(diff_sigs.size(), slog.num_windows());
  for (std::size_t w = 0; w < slog.num_windows(); ++w) {
    EXPECT_EQ(slog.observed[w] ^ slog.expected[w], diff_sigs[w]) << w;
  }
}

// ---------- session-level typed errors (acceptance criterion d) -------------

TEST(SessionEvidenceTest, InMemoryOutOfRangeEvidenceIsTyped) {
  ScanSession session(map_to_nand_nor_inv(make_iscas89_like("s344")));
  session.bind_patterns(
      random_patterns(session.netlist(), 32, 0x5e55));

  FailureLog bad;
  bad.num_patterns = 32;
  bad.failures = {{40, 0}};  // pattern out of range
  try {
    session.diagnose(bad);
    FAIL() << "out-of-range pattern accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("outside the 32-pattern log"),
              std::string::npos)
        << e.what();
  }

  FailureLog bad2;
  bad2.num_patterns = 32;
  bad2.failures = {{3, 0xffff}};  // point out of range
  try {
    session.diagnose(bad2);
    FAIL() << "out-of-range point accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("observation space"),
              std::string::npos)
        << e.what();
  }

  FailureLog bad3;
  bad3.num_patterns = 7;  // wrong pattern-set size
  bad3.failures = {{3, 0}};
  EXPECT_THROW(session.diagnose(bad3), Error);
}

// ---------- multiplet cover + union fallback --------------------------------

// Clean single-fault logs must skip both recovery stages entirely: the
// top candidate explains everything, so multiplets stay empty and the
// intersection pruning stands. (This is the zero-overhead guarantee for
// the noise-free paths.)
TEST(MultipletTest, CleanSingleFaultLogSkipsRecovery) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  Diagnoser diag(nl, DiagnosisOptions{});
  const FailureLog log = cap.inject(pats, faults[100]);
  ASSERT_FALSE(log.failures.empty());
  const DiagnosisResult res = diag.diagnose(pats, faults, log);
  EXPECT_TRUE(res.multiplets.empty());
  EXPECT_FALSE(res.union_fallback);
  EXPECT_EQ(res.rank_of(faults[100]), 1u);
}

TEST(MultipletTest, SuspectSetsAreWellFormed) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto pats = random_patterns(nl, 96, 0x10c);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  DiagnosisOptions opts;
  Diagnoser diag(nl, opts);
  Rng rng(0x5e75);
  std::size_t with_sets = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const std::vector<Fault> pair = {faults[rng.next_below(faults.size())],
                                     faults[rng.next_below(faults.size())]};
    if (pair[0].gate == pair[1].gate) continue;
    const FailureLog log = cap.inject(pats, std::span<const Fault>(pair));
    if (log.failures.empty()) continue;
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    if (res.multiplets.empty()) continue;
    ++with_sets;
    std::size_t prev_covered = res.num_failing_patterns + 1;
    for (const SuspectSet& set : res.multiplets) {
      EXPECT_FALSE(set.members.empty());
      EXPECT_LE(set.members.size(), opts.max_multiplet_size);
      EXPECT_EQ(set.covered + set.uncovered, res.num_failing_patterns);
      EXPECT_LE(set.covered, prev_covered);  // sorted best-cover first
      prev_covered = set.covered;
    }
    EXPECT_LE(res.multiplets.size(), opts.max_multiplets);
  }
  EXPECT_GT(with_sets, 0u) << "no trial exercised the multiplet cover";
}

// ---------- acceptance across every benchgen profile ------------------------

struct PairTrialOutcome {
  int trials = 0;
  int recovered = 0;
  int union_fallbacks = 0;
};

/// True iff `member` is equivalent to injected fault `f` under `pats`:
/// identical single-fault failure logs (indistinguishable defects).
bool equivalent_under(ResponseCapture& cap, std::span<const TestPattern> pats,
                      const Fault& member, const Fault& f) {
  if (member == f) return true;
  return same_failures(cap.inject(pats, member), cap.inject(pats, f));
}

bool set_recovers_pair(ResponseCapture& cap, std::span<const TestPattern> pats,
                       const SuspectSet& set, const Fault& f1,
                       const Fault& f2, const FailureLog& pair_log) {
  bool got1 = false, got2 = false;
  for (const CandidateScore& sc : set.members) {
    got1 = got1 || equivalent_under(cap, pats, sc.fault, f1);
    got2 = got2 || equivalent_under(cap, pats, sc.fault, f2);
  }
  if (got1 && got2) return true;
  // Fallback: the set as a whole reproduces the tester log exactly (an
  // equally valid explanation even if it names different suspects).
  std::vector<Fault> members;
  for (const CandidateScore& sc : set.members) members.push_back(sc.fault);
  try {
    return same_failures(cap.inject(pats, std::span<const Fault>(members)),
                         pair_log);
  } catch (const Error&) {
    return false;  // contradictory same-site members cannot be injected
  }
}

TEST(NoiseAcceptance, PairsRecoveredInTopSuspectSet) {
  int total_trials = 0;
  int total_recovered = 0;
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto faults = collapse_faults(nl);
    const auto pats = random_patterns(nl, 96, 0xacce97 + profile.seed);

    FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
    const FaultSimResult det = fsim.run(pats, faults);
    std::vector<std::size_t> detected;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (det.detected[fi]) detected.push_back(fi);
    }
    ASSERT_GE(detected.size(), 100u) << profile.name;

    ResponseCapture cap(nl, 4);
    Diagnoser diag(nl, DiagnosisOptions{.num_threads = 4});
    Rng rng(0xfa17 + profile.seed);
    PairTrialOutcome out;
    while (out.trials < 9) {
      const Fault f1 = faults[detected[rng.next_below(detected.size())]];
      const Fault f2 = faults[detected[rng.next_below(detected.size())]];
      if (f1.gate == f2.gate) continue;  // skip same-site draws
      const std::vector<Fault> pair = {f1, f2};
      const FailureLog pair_log =
          cap.inject(pats, std::span<const Fault>(pair));
      if (pair_log.failures.empty()) continue;
      const DiagnosisResult res = diag.diagnose(pats, faults, pair_log);
      out.trials++;
      if (res.union_fallback) out.union_fallbacks++;
      bool ok = false;
      if (!res.multiplets.empty()) {
        ok = set_recovers_pair(cap, pats, res.multiplets.front(), f1, f2,
                               pair_log);
      }
      if (!ok && !res.ranked.empty() && !res.ranked.front().dropped) {
        // One fault masked the other (or their union is a single-fault
        // log): every rank-1 candidate is an exact explanation.
        for (const CandidateScore& sc : res.ranked) {
          if (sc.tfsf != res.ranked.front().tfsf ||
              sc.hamming() != res.ranked.front().hamming()) {
            break;
          }
          if (same_failures(cap.inject(pats, sc.fault), pair_log)) {
            ok = true;
            break;
          }
        }
      }
      if (ok) out.recovered++;
    }
    total_trials += out.trials;
    total_recovered += out.recovered;
    RecordProperty(profile.name.c_str(), out.recovered);
  }
  EXPECT_GE(total_trials, 100);
  EXPECT_GE(total_recovered * 100, total_trials * 90)
      << total_recovered << "/" << total_trials << " pairs recovered";
}

TEST(NoiseAcceptance, NoisySinglesRankTopThree) {
  int total_trials = 0;
  int total_top3 = 0;
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto faults = collapse_faults(nl);
    const auto pats = random_patterns(nl, 96, 0xacce97 + profile.seed);

    FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
    const FaultSimResult det = fsim.run(pats, faults);
    std::vector<std::size_t> detected;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (det.detected[fi]) detected.push_back(fi);
    }
    ASSERT_GE(detected.size(), 100u) << profile.name;

    ResponseCapture cap(nl, 4);
    Rng rng(0x9015e + profile.seed);
    int trials = 0, top3 = 0;
    while (trials < 9) {
      const Fault f = faults[detected[rng.next_below(detected.size())]];
      const FailureLog clean = cap.inject(pats, f);
      if (clean.failures.empty()) continue;
      const NoiseModel nm(NoiseOptions{
          .drop_rate = 0.05, .flip_rate = 0.05,
          .seed = 0xc0447 + static_cast<std::uint64_t>(trials)});
      NoiseStats st;
      const FailureLog noisy = nm.corrupt(clean, cap.points().size(), &st);
      if (noisy.failures.empty()) continue;
      // Tolerance = the tester's own noise floor: the realized corruption
      // plus slack, the knob a production flow would set from retest data.
      DiagnosisOptions opts;
      opts.num_threads = 4;
      opts.noise_tolerance = st.dropped + st.flipped + 2;
      Diagnoser diag(nl, opts);
      const DiagnosisResult res = diag.diagnose(pats, faults, noisy);
      trials++;
      const std::size_t rank = res.rank_of(f);
      if (rank >= 1 && rank <= 3) top3++;
    }
    total_trials += trials;
    total_top3 += top3;
    RecordProperty(profile.name.c_str(), top3);
  }
  EXPECT_GE(total_trials, 100);
  EXPECT_GE(total_top3 * 100, total_trials * 90)
      << total_top3 << "/" << total_trials << " noisy singles in top-3";
}

TEST(NoiseAcceptance, NoisyResultsBitIdenticalAcrossConfigs) {
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto faults = collapse_faults(nl);
    const auto pats = random_patterns(nl, 96, 0xacce97 + profile.seed);
    ResponseCapture cap(nl, 4);
    Rng rng(0xb17 + profile.seed);

    // One noisy single-fault log and one clean pair log per profile.
    std::vector<FailureLog> logs;
    const NoiseModel nm(NoiseOptions{.drop_rate = 0.05, .flip_rate = 0.05});
    while (logs.size() < 1) {
      const FailureLog clean =
          cap.inject(pats, faults[rng.next_below(faults.size())]);
      if (clean.failures.empty()) continue;
      FailureLog noisy = nm.corrupt(clean, cap.points().size());
      if (!noisy.failures.empty()) logs.push_back(std::move(noisy));
    }
    while (logs.size() < 2) {
      const std::vector<Fault> pair = {faults[rng.next_below(faults.size())],
                                       faults[rng.next_below(faults.size())]};
      if (pair[0].gate == pair[1].gate) continue;
      FailureLog log = cap.inject(pats, std::span<const Fault>(pair));
      if (!log.failures.empty()) logs.push_back(std::move(log));
    }

    for (const FailureLog& log : logs) {
      DiagnosisResult ref;
      bool have_ref = false;
      for (int words : {1, 4}) {
        for (int threads : {1, 4}) {
          DiagnosisOptions opts;
          opts.block_words = words;
          opts.num_threads = threads;
          opts.noise_tolerance = 4;
          Diagnoser d(nl, opts);
          const DiagnosisResult res = d.diagnose(pats, faults, log);
          if (!have_ref) {
            ref = res;
            have_ref = true;
            continue;
          }
          const std::string cfg = strprintf("%s W=%d T=%d",
                                            profile.name.c_str(), words,
                                            threads);
          ASSERT_EQ(res.union_fallback, ref.union_fallback) << cfg;
          ASSERT_EQ(res.ranked.size(), ref.ranked.size()) << cfg;
          for (std::size_t i = 0; i < ref.ranked.size(); ++i) {
            ASSERT_EQ(res.ranked[i].fault, ref.ranked[i].fault) << cfg;
            ASSERT_EQ(res.ranked[i].tfsf, ref.ranked[i].tfsf) << cfg;
            ASSERT_EQ(res.ranked[i].tfsp, ref.ranked[i].tfsp) << cfg;
            ASSERT_EQ(res.ranked[i].tpsf, ref.ranked[i].tpsf) << cfg;
            ASSERT_EQ(res.ranked[i].dropped, ref.ranked[i].dropped) << cfg;
          }
          ASSERT_EQ(res.multiplets.size(), ref.multiplets.size()) << cfg;
          for (std::size_t s = 0; s < ref.multiplets.size(); ++s) {
            ASSERT_EQ(res.multiplets[s].covered, ref.multiplets[s].covered)
                << cfg;
            ASSERT_EQ(res.multiplets[s].members.size(),
                      ref.multiplets[s].members.size())
                << cfg;
            for (std::size_t m = 0; m < ref.multiplets[s].members.size();
                 ++m) {
              ASSERT_EQ(res.multiplets[s].members[m].fault,
                        ref.multiplets[s].members[m].fault)
                  << cfg << " set " << s;
            }
          }
        }
      }
    }
  }
}

// Batch diagnosis fans noisy-log recovery across the worker pool; each
// result must still be bit-identical to a sequential diagnose() on the
// same log. (This test is in the CI ThreadSanitizer job's net.)
TEST(NoiseAcceptance, BatchMatchesSequentialOnNoisyAndPairLogs) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 96, 0x10c);
  ResponseCapture cap(nl, 4);
  Rng rng(0xba7c);
  const NoiseModel nm(NoiseOptions{.drop_rate = 0.08, .flip_rate = 0.08});

  std::vector<FailureLog> logs;
  while (logs.size() < 6) {
    if (logs.size() % 2 == 0) {
      FailureLog noisy = nm.corrupt(
          cap.inject(pats, faults[rng.next_below(faults.size())]),
          cap.points().size());
      if (!noisy.failures.empty()) logs.push_back(std::move(noisy));
    } else {
      const std::vector<Fault> pair = {faults[rng.next_below(faults.size())],
                                       faults[rng.next_below(faults.size())]};
      if (pair[0].gate == pair[1].gate) continue;
      FailureLog log = cap.inject(pats, std::span<const Fault>(pair));
      if (!log.failures.empty()) logs.push_back(std::move(log));
    }
  }

  DiagnosisOptions opts;
  opts.num_threads = 4;
  opts.noise_tolerance = 3;
  Diagnoser diag(nl, opts);
  std::vector<const FailureLog*> ptrs;
  for (const FailureLog& log : logs) ptrs.push_back(&log);
  const std::vector<DiagnosisResult> batch =
      diag.diagnose_batch(pats, faults, ptrs);
  ASSERT_EQ(batch.size(), logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    const DiagnosisResult seq = diag.diagnose(pats, faults, logs[i]);
    ASSERT_EQ(batch[i].union_fallback, seq.union_fallback) << i;
    ASSERT_EQ(batch[i].ranked.size(), seq.ranked.size()) << i;
    for (std::size_t k = 0; k < seq.ranked.size(); ++k) {
      ASSERT_EQ(batch[i].ranked[k].fault, seq.ranked[k].fault) << i;
      ASSERT_EQ(batch[i].ranked[k].tpsf, seq.ranked[k].tpsf) << i;
    }
    ASSERT_EQ(batch[i].multiplets.size(), seq.multiplets.size()) << i;
    for (std::size_t s = 0; s < seq.multiplets.size(); ++s) {
      ASSERT_EQ(batch[i].multiplets[s].members.size(),
                seq.multiplets[s].members.size())
          << i;
      for (std::size_t m = 0; m < seq.multiplets[s].members.size(); ++m) {
        ASSERT_EQ(batch[i].multiplets[s].members[m].fault,
                  seq.multiplets[s].members[m].fault)
            << i << " set " << s;
      }
    }
  }
}

}  // namespace
}  // namespace scanpower
