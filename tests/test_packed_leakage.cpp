// Packed leakage-evaluation engine: per-gate tables, per-lane packed
// leakage (2-valued and ternary), the packed Monte-Carlo observability
// engine, the packed don't-care fill and the packed min-leakage vector
// search -- all cross-checked against the scalar reference stack.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/benchgen.hpp"
#include "core/dont_care_fill.hpp"
#include "core/find_pattern.hpp"
#include "netlist/builder.hpp"
#include "power/leakage_model.hpp"
#include "power/observability.hpp"
#include "power/packed_leakage.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

// ---------- per-gate tables -------------------------------------------------

TEST(GateTables, MatchCellLeakageForEveryState) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const LeakageModel model;
  const GateLeakageTables tables(nl, model);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const GateType t = nl.type(id);
    if (!is_combinational(t) || t == GateType::Const0 ||
        t == GateType::Const1) {
      EXPECT_TRUE(tables.leakless(id));
      EXPECT_EQ(tables.table(id), nullptr);
      continue;
    }
    const int w = tables.width(id);
    const double* tbl = tables.table(id);
    ASSERT_NE(tbl, nullptr);
    for (unsigned s = 0; s < (1u << w); ++s) {
      EXPECT_DOUBLE_EQ(tbl[s], model.cell_leakage_na(t, w, s));
    }
  }
}

TEST(GateTables, XTableMatchesExpectedLeakage) {
  NetlistBuilder b("x");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_output("g");
  const Netlist nl = b.link();
  const LeakageModel model;
  const GateLeakageTables tables(nl, model);
  const GateId g = nl.find("g");
  const double* xt = tables.xtable(g);
  ASSERT_NE(xt, nullptr);
  const Logic kVals[3] = {Logic::Zero, Logic::One, Logic::X};
  for (Logic va : kVals) {
    for (Logic vc : kVals) {
      unsigned s = 0;
      unsigned m = 0;
      if (va == Logic::One) s |= 1;
      if (va == Logic::X) m |= 1;
      if (vc == Logic::One) s |= 2;
      if (vc == Logic::X) m |= 2;
      const std::vector<Logic> ins = {va, vc};
      EXPECT_DOUBLE_EQ(xt[s | (m << 2)],
                       model.cell_expected_leakage_na(GateType::Nand, ins));
    }
  }
}

// ---------- per-lane leakage vs the scalar walk -----------------------------

// Acceptance: on every benchgen profile and every block width, every
// lane's packed leakage must equal the scalar circuit_leakage_na of the
// same vector within 1e-9 relative tolerance.
TEST(PackedLeakage, PerLaneMatchesScalarOnEveryProfile) {
  const LeakageModel model;
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const GateLeakageTables tables(nl, model);
    const PackedLeakageEvaluator leval(nl, tables);
    Simulator scalar(nl);
    for (int words : {1, 4}) {
      BlockSimulator sim(nl, words);
      Rng rng(0x9acced + profile.seed);
      for (GateId pi : nl.inputs()) {
        for (int w = 0; w < words; ++w) {
          sim.set_source_word(pi, w, rng.next_u64());
        }
      }
      for (GateId ff : nl.dffs()) {
        for (int w = 0; w < words; ++w) {
          sim.set_source_word(ff, w, rng.next_u64());
        }
      }
      sim.eval();
      std::vector<double> leak(sim.lanes());
      leval.eval(sim, leak);

      // Check a spread of lanes against the scalar stack.
      for (std::size_t lane = 0; lane < sim.lanes();
           lane += (profile.num_gates > 1000 ? 37 : 7)) {
        const std::size_t w = lane / 64;
        for (GateId pi : nl.inputs()) {
          scalar.set_input(pi,
                           from_bool((sim.word(pi, static_cast<int>(w)) >>
                                      (lane % 64)) &
                                     1));
        }
        for (GateId ff : nl.dffs()) {
          scalar.set_state(ff,
                           from_bool((sim.word(ff, static_cast<int>(w)) >>
                                      (lane % 64)) &
                                     1));
        }
        scalar.eval_incremental();
        const double ref = model.circuit_leakage_na(nl, scalar.values());
        EXPECT_NEAR(leak[lane], ref, std::abs(ref) * 1e-9)
            << profile.name << " W=" << words << " lane=" << lane;
      }
    }
  }
}

TEST(PackedLeakage, TernaryMatchesScalarWithXSources) {
  const LeakageModel model;
  for (const char* name : {"s344", "s1423"}) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(name));
    const GateLeakageTables tables(nl, model);
    const PackedLeakageEvaluator leval(nl, tables);
    TernaryBlockSimulator sim(nl, 1);
    Simulator scalar(nl);
    Rng rng(0x7e17a);

    // Lane 0..63 all share the same X sources (every third source), with
    // random known values elsewhere -- the don't-care-fill shape.
    std::vector<GateId> sources;
    for (GateId pi : nl.inputs()) sources.push_back(pi);
    for (GateId ff : nl.dffs()) sources.push_back(ff);
    for (std::size_t j = 0; j < sources.size(); ++j) {
      if (j % 3 == 0) {
        sim.set_source_all(sources[j], Logic::X);
      } else {
        sim.set_source_word(sources[j], 0, rng.next_u64());
      }
    }
    sim.eval();
    std::vector<double> leak(sim.lanes());
    leval.eval(sim, leak);

    for (std::size_t lane = 0; lane < 64; lane += 9) {
      for (std::size_t j = 0; j < sources.size(); ++j) {
        scalar.set_source(sources[j], sim.lane_value(sources[j], lane));
      }
      scalar.eval_incremental();
      // The ternary planes must agree with the scalar Kleene values...
      for (GateId id = 0; id < nl.num_gates(); ++id) {
        ASSERT_EQ(sim.lane_value(id, lane), scalar.value(id))
            << name << " gate " << nl.gate_name(id) << " lane " << lane;
      }
      // ...and so must the X-aware expected leakage.
      const double ref = model.circuit_leakage_na(nl, scalar.values());
      EXPECT_NEAR(leak[lane], ref, std::abs(ref) * 1e-9)
          << name << " lane=" << lane;
    }
  }
}

// ---------- packed Monte-Carlo observability --------------------------------

// Acceptance: at a fixed seed the packed reduction must be bit-identical
// across thread counts, for every profile and both block widths.
TEST(PackedObservability, BitIdenticalAcrossThreadCounts) {
  const LeakageModel model;
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    for (int words : {1, 4}) {
      std::vector<double> ref;
      double ref_mean = 0.0;
      for (int threads : {1, 4}) {
        ObservabilityOptions opts;
        opts.samples = 96;  // deliberately not a multiple of the lane count
        opts.block_words = words;
        opts.num_threads = threads;
        const LeakageObservability obs(nl, model, opts);
        if (threads == 1) {
          ref = obs.values();
          ref_mean = obs.mean_leakage_na();
          continue;
        }
        ASSERT_EQ(obs.values().size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
          ASSERT_EQ(obs.values()[i], ref[i])
              << profile.name << " W=" << words << " gate " << i;
        }
        ASSERT_EQ(obs.mean_leakage_na(), ref_mean) << profile.name;
      }
    }
  }
}

// On a single inverter the conditional averages are exact whatever the
// sampling engine: obs(a) = L(1) - L(0) = -61 nA.
TEST(PackedObservability, InverterExactValue) {
  NetlistBuilder b("inv");
  b.add_input("a");
  b.add_gate(GateType::Not, "y", {"a"});
  b.add_output("y");
  const Netlist nl = b.link();
  const LeakageModel model;
  ObservabilityOptions opts;
  opts.samples = 300;
  opts.packed = true;
  const LeakageObservability packed(nl, model, opts);
  EXPECT_NEAR(packed.obs(nl.find("a")), -61.0, 1e-6);
  opts.packed = false;
  const LeakageObservability scalar(nl, model, opts);
  EXPECT_NEAR(scalar.obs(nl.find("a")), -61.0, 1e-6);
}

// Packed and scalar engines draw different sample streams but estimate
// the same quantity; with enough samples they must agree loosely.
TEST(PackedObservability, AgreesWithScalarEstimatorOnS27) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel model;
  ObservabilityOptions opts;
  opts.samples = 4096;
  opts.packed = true;
  const LeakageObservability packed(nl, model, opts);
  opts.packed = false;
  const LeakageObservability scalar(nl, model, opts);
  EXPECT_NEAR(packed.mean_leakage_na(), scalar.mean_leakage_na(),
              0.02 * scalar.mean_leakage_na());
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    EXPECT_NEAR(packed.obs(id), scalar.obs(id),
                std::max(40.0, std::abs(scalar.obs(id)) * 0.5))
        << nl.gate_name(id);
  }
}

// ---------- packed don't-care fill ------------------------------------------

// The packed fill draws the scalar engine's random stream and computes
// bit-identical leakage, so both engines must choose the same fill.
TEST(PackedFill, MatchesScalarFillExactly) {
  const LeakageModel model;
  for (const char* name : {"s344", "s382", "s1423"}) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(name));
    // All PIs free, every second scan cell multiplexed and free.
    std::vector<bool> eligible(nl.dffs().size());
    for (std::size_t i = 0; i < eligible.size(); ++i) eligible[i] = i % 2 == 0;

    for (int trials : {1, 64, 300}) {
      FillOptions sopts;
      sopts.trials = trials;
      sopts.packed = false;
      std::vector<Logic> spi(nl.inputs().size(), Logic::X);
      std::vector<Logic> smux(nl.dffs().size(), Logic::X);
      const FillResult sres = fill_dont_cares_min_leakage(
          nl, model, spi, smux, eligible, sopts);

      FillOptions popts = sopts;
      popts.packed = true;
      popts.block_words = 1;  // force multi-block batches at 300 trials
      std::vector<Logic> ppi(nl.inputs().size(), Logic::X);
      std::vector<Logic> pmux(nl.dffs().size(), Logic::X);
      const FillResult pres = fill_dont_cares_min_leakage(
          nl, model, ppi, pmux, eligible, popts);

      EXPECT_EQ(ppi, spi) << name << " trials=" << trials;
      EXPECT_EQ(pmux, smux) << name << " trials=" << trials;
      EXPECT_NEAR(pres.best_leakage_na, sres.best_leakage_na,
                  std::abs(sres.best_leakage_na) * 1e-9);
      EXPECT_NEAR(pres.first_leakage_na, sres.first_leakage_na,
                  std::abs(sres.first_leakage_na) * 1e-9);
      EXPECT_EQ(pres.trials, sres.trials);
      EXPECT_EQ(pres.free_inputs, sres.free_inputs);
    }
  }
}

TEST(PackedFill, NoFreeInputsMatchesScalar) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel model;
  std::vector<Logic> pi(nl.inputs().size(), Logic::One);
  std::vector<Logic> mux(nl.dffs().size(), Logic::X);
  std::vector<bool> eligible(nl.dffs().size(), false);
  FillOptions opts;
  opts.packed = true;
  const FillResult packed =
      fill_dont_cares_min_leakage(nl, model, pi, mux, eligible, opts);
  opts.packed = false;
  const FillResult scalar =
      fill_dont_cares_min_leakage(nl, model, pi, mux, eligible, opts);
  EXPECT_EQ(packed.free_inputs, 0u);
  EXPECT_NEAR(packed.best_leakage_na, scalar.best_leakage_na,
              std::abs(scalar.best_leakage_na) * 1e-9);
}

// ---------- packed min-leakage vector search --------------------------------

TEST(MinLeakageSearch, FindsExhaustiveMinimumOnS27) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel model;

  // Exhaustive reference over the 2^7 source assignments.
  Simulator sim(nl);
  const std::size_t n_src = nl.inputs().size() + nl.dffs().size();
  ASSERT_LE(n_src, 20u);
  double exact = 1e300;
  for (std::uint64_t v = 0; v < (1ull << n_src); ++v) {
    unsigned k = 0;
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool((v >> k++) & 1));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool((v >> k++) & 1));
    sim.eval_incremental();
    exact = std::min(exact, model.circuit_leakage_na(nl, sim.values()));
  }

  MinLeakageSearchOptions opts;
  opts.sweeps = 4;
  const MinLeakageSearchResult res = min_leakage_vector_search(nl, model, opts);
  EXPECT_LE(res.best_leakage_na, res.random_best_na + 1e-12);
  EXPECT_NEAR(res.best_leakage_na, exact, std::abs(exact) * 1e-9);
  EXPECT_EQ(res.pi.size(), nl.inputs().size());
  EXPECT_EQ(res.ppi.size(), nl.dffs().size());

  // The reported vector reproduces the reported leakage.
  unsigned k2 = 0;
  std::uint64_t bits = 0;
  for (Logic v : res.pi) bits |= static_cast<std::uint64_t>(v == Logic::One) << k2++;
  for (Logic v : res.ppi) bits |= static_cast<std::uint64_t>(v == Logic::One) << k2++;
  unsigned k3 = 0;
  for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool((bits >> k3++) & 1));
  for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool((bits >> k3++) & 1));
  sim.eval_incremental();
  EXPECT_NEAR(model.circuit_leakage_na(nl, sim.values()), res.best_leakage_na,
              std::abs(res.best_leakage_na) * 1e-9);
}

TEST(MinLeakageSearch, DeterministicAcrossThreadCounts) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s1423"));
  const LeakageModel model;
  MinLeakageSearchOptions opts;
  opts.sweeps = 4;
  opts.max_refine_flips = 8;
  opts.num_threads = 1;
  const MinLeakageSearchResult a = min_leakage_vector_search(nl, model, opts);
  opts.num_threads = 4;
  const MinLeakageSearchResult b = min_leakage_vector_search(nl, model, opts);
  EXPECT_EQ(a.pi, b.pi);
  EXPECT_EQ(a.ppi, b.ppi);
  EXPECT_EQ(a.best_leakage_na, b.best_leakage_na);
  EXPECT_EQ(a.random_best_na, b.random_best_na);
  EXPECT_EQ(a.refine_flips, b.refine_flips);
}

TEST(MinLeakageSearch, RefinementNeverWorseThanRandomStage) {
  const LeakageModel model;
  for (const char* name : {"s344", "s641"}) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(name));
    MinLeakageSearchOptions opts;
    opts.sweeps = 2;
    const MinLeakageSearchResult res =
        min_leakage_vector_search(nl, model, opts);
    EXPECT_LE(res.best_leakage_na, res.random_best_na + 1e-12) << name;
    EXPECT_GT(res.best_leakage_na, 0.0) << name;
  }
}

}  // namespace
}  // namespace scanpower
