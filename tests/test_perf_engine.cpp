// Cross-checks for the performance engine: CSR netlist views, multi-word
// packed simulation, and thread-parallel fault simulation. Every packed /
// parallel configuration must be bit-identical to the scalar / serial
// reference.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/packed_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {
namespace {

// ---------- CSR flat views --------------------------------------------------

TEST(NetlistCsr, FlatViewsMirrorPerGateVectors) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const auto fi = nl.fanin_span(id);
    ASSERT_EQ(fi.size(), nl.fanins(id).size());
    for (std::size_t p = 0; p < fi.size(); ++p) EXPECT_EQ(fi[p], nl.fanins(id)[p]);
    const auto fo = nl.fanout_span(id);
    ASSERT_EQ(fo.size(), nl.fanouts(id).size());
    for (std::size_t p = 0; p < fo.size(); ++p) EXPECT_EQ(fo[p], nl.fanouts(id)[p]);
    EXPECT_EQ(nl.types_flat()[id], nl.type(id));
    EXPECT_EQ(nl.levels_flat()[id], nl.level(id));
  }
}

TEST(NetlistCsr, TopoOrderIsLevelSorted) {
  const Netlist nl = make_iscas89_like("s382");
  std::uint32_t prev = 0;
  for (GateId id : nl.topo_order()) {
    EXPECT_GE(nl.level(id), prev);
    prev = nl.level(id);
  }
}

TEST(NetlistCsr, PermuteFaninsUpdatesCsrRow) {
  NetlistBuilder b("perm");
  b.add_input("a");
  b.add_input("c");
  b.add_input("d");
  b.add_gate(GateType::Nand, "g", {"a", "c", "d"});
  b.add_output("g");
  Netlist nl = b.link();
  const GateId g = nl.find("g");
  nl.permute_fanins(g, {2, 0, 1});
  ASSERT_TRUE(nl.finalized());
  const auto fi = nl.fanin_span(g);
  ASSERT_EQ(fi.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) EXPECT_EQ(fi[p], nl.fanins(g)[p]);
  EXPECT_EQ(fi[0], nl.find("d"));
}

// ---------- multi-word packed simulation ------------------------------------

// Every lane of every block width must reproduce the scalar simulator.
TEST(BlockSim, MatchesScalarSimulatorAllWidths) {
  for (const char* name : {"s344", "s382"}) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(name));
    Simulator scalar(nl);
    for (int words : {1, 2, 4}) {
      BlockSimulator block(nl, words);
      Rng rng(0x5eed + words);
      const std::size_t lanes = block.lanes();
      std::vector<TestPattern> pats;
      for (std::size_t i = 0; i < lanes; ++i) {
        pats.push_back(random_pattern(nl, rng));
      }
      for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
        for (int w = 0; w < words; ++w) {
          PatternWord word = 0;
          for (int j = 0; j < 64; ++j) {
            if (pats[static_cast<std::size_t>(w) * 64 + j].pi[k] == Logic::One) {
              word |= PatternWord{1} << j;
            }
          }
          block.set_source_word(nl.inputs()[k], w, word);
        }
      }
      for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
        for (int w = 0; w < words; ++w) {
          PatternWord word = 0;
          for (int j = 0; j < 64; ++j) {
            if (pats[static_cast<std::size_t>(w) * 64 + j].ppi[k] == Logic::One) {
              word |= PatternWord{1} << j;
            }
          }
          block.set_source_word(nl.dffs()[k], w, word);
        }
      }
      block.eval();
      // Spot-check a spread of lanes (first/last of each word + a stride).
      for (std::size_t lane = 0; lane < lanes; lane += (lane % 64 == 62 ? 1 : 13)) {
        scalar.set_inputs(pats[lane].pi);
        scalar.set_states(pats[lane].ppi);
        scalar.eval_incremental();
        const int w = static_cast<int>(lane / 64);
        const int bit = static_cast<int>(lane % 64);
        for (GateId id = 0; id < nl.num_gates(); ++id) {
          const bool lane_bit = (block.word(id, w) >> bit) & 1;
          ASSERT_EQ(from_bool(lane_bit), scalar.value(id))
              << name << " W=" << words << " lane " << lane << " gate "
              << nl.gate_name(id);
        }
      }
    }
  }
}

TEST(BlockSim, RejectsInvalidWidth) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  EXPECT_THROW(BlockSimulator(nl, 3), Error);
  EXPECT_THROW(BlockSimulator(nl, 0), Error);
  EXPECT_THROW(FaultSimulator(nl, FaultSimOptions{.block_words = 5}), Error);
}

// ---------- fault-sim configuration equivalence -----------------------------

void expect_identical_results(const FaultSimResult& a, const FaultSimResult& b,
                              const char* what) {
  ASSERT_EQ(a.detected, b.detected) << what;
  ASSERT_EQ(a.detecting_pattern, b.detecting_pattern) << what;
  ASSERT_EQ(a.new_detects_per_pattern, b.new_detects_per_pattern) << what;
  ASSERT_EQ(a.num_detected, b.num_detected) << what;
}

// Detection set, first-detecting-pattern indices and per-pattern counts
// must not depend on block width or thread count.
TEST(FaultSimConfig, AllConfigurationsBitIdentical) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto faults = collapse_faults(nl);
  Rng rng(97);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 193; ++i) pats.push_back(random_pattern(nl, rng));

  FaultSimulator reference(nl, FaultSimOptions{.block_words = 1, .num_threads = 1});
  const FaultSimResult ref = reference.run(pats, faults);
  EXPECT_GT(ref.num_detected, 0u);

  const FaultSimOptions configs[] = {
      {.block_words = 2, .num_threads = 1},
      {.block_words = 4, .num_threads = 1},
      {.block_words = 8, .num_threads = 1},
      {.block_words = 4, .num_threads = 2},
      {.block_words = 4, .num_threads = 4},
      {.block_words = 1, .num_threads = 3},
  };
  for (const FaultSimOptions& opts : configs) {
    FaultSimulator fsim(nl, opts);
    const FaultSimResult res = fsim.run(pats, faults);
    const std::string what = "W=" + std::to_string(opts.block_words) +
                             " T=" + std::to_string(opts.num_threads);
    expect_identical_results(ref, res, what.c_str());
  }
}

TEST(FaultSimConfig, InitialDetectedRespectedInParallel) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  Rng rng(11);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 96; ++i) pats.push_back(random_pattern(nl, rng));

  // Mark every other fault as already detected.
  std::vector<bool> initial(faults.size(), false);
  for (std::size_t i = 0; i < initial.size(); i += 2) initial[i] = true;

  FaultSimulator serial(nl, FaultSimOptions{.block_words = 1, .num_threads = 1});
  FaultSimulator parallel(nl, FaultSimOptions{.block_words = 4, .num_threads = 4});
  const FaultSimResult a = serial.run(pats, faults, &initial);
  const FaultSimResult b = parallel.run(pats, faults, &initial);
  expect_identical_results(a, b, "initial-detected");
  for (std::size_t i = 0; i < initial.size(); i += 2) {
    EXPECT_FALSE(a.detected[i]);
  }
}

TEST(FaultSimConfig, AllFaultsInitiallyDetectedShortCircuits) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  Rng rng(13);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 8; ++i) pats.push_back(random_pattern(nl, rng));
  std::vector<bool> all(faults.size(), true);
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4, .num_threads = 2});
  const FaultSimResult res = fsim.run(pats, faults, &all);
  EXPECT_EQ(res.num_detected, 0u);
  for (std::size_t p = 0; p < pats.size(); ++p) {
    EXPECT_EQ(res.new_detects_per_pattern[p], 0u);
  }
}

// ---------- thread pool -----------------------------------------------------

TEST(ThreadPoolTest, RunsEveryWorkerIndexOnce) {
  for (int threads : {1, 2, 5}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(threads));
    for (auto& h : hits) h = 0;
    for (int round = 0; round < 3; ++round) {
      pool.run_on_all([&](int t) { hits[static_cast<std::size_t>(t)]++; });
    }
    for (int t = 0; t < threads; ++t) EXPECT_EQ(hits[static_cast<std::size_t>(t)], 3);
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  constexpr int kN = 10000;
  std::vector<int> data(kN);
  std::iota(data.begin(), data.end(), 1);
  ThreadPool pool(4);
  std::vector<long long> partial(4, 0);
  pool.run_on_all([&](int t) {
    for (int i = t; i < kN; i += 4) partial[static_cast<std::size_t>(t)] += data[static_cast<std::size_t>(i)];
  });
  const long long total = partial[0] + partial[1] + partial[2] + partial[3];
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN + 1) / 2);
}

}  // namespace
}  // namespace scanpower
