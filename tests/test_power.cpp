#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "power/leakage_model.hpp"
#include "power/observability.hpp"
#include "power/power_est.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

// ---------- leakage model (Figure 2 calibration) ---------------------------

TEST(Leakage, Nand2MatchesPaperFigure2Exactly) {
  const LeakageModel model;
  // Pattern bit0 = pin A (the strong stack position), bit1 = pin B.
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Nand, 2, 0b00), 78.0);
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Nand, 2, 0b10), 73.0);
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Nand, 2, 0b01), 264.0);
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Nand, 2, 0b11), 408.0);
}

TEST(Leakage, PinOrderAsymmetryEnablesReordering) {
  const LeakageModel model;
  // "01" vs "10" must differ (that is what pin reordering exploits).
  EXPECT_NE(model.cell_leakage_na(GateType::Nand, 2, 0b01),
            model.cell_leakage_na(GateType::Nand, 2, 0b10));
  EXPECT_NE(model.cell_leakage_na(GateType::Nor, 2, 0b01),
            model.cell_leakage_na(GateType::Nor, 2, 0b10));
}

TEST(Leakage, AllValuesPositive) {
  const LeakageModel model;
  for (GateType t : {GateType::Nand, GateType::Nor}) {
    for (int w = 2; w <= 4; ++w) {
      for (unsigned p = 0; p < (1u << w); ++p) {
        EXPECT_GT(model.cell_leakage_na(t, w, p), 0.0)
            << gate_type_name(t) << w << " p=" << p;
      }
    }
  }
  EXPECT_GT(model.cell_leakage_na(GateType::Not, 1, 0), 0.0);
  EXPECT_GT(model.cell_leakage_na(GateType::Not, 1, 1), 0.0);
}

TEST(Leakage, SourcesAndConstantsLeakNothing) {
  const LeakageModel model;
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Input, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Dff, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.cell_leakage_na(GateType::Const0, 0, 0), 0.0);
}

TEST(Leakage, NandAllOnesIsWorstCase) {
  // Output 0 turns off the whole parallel PMOS bank: the all-1 input is
  // the highest-leakage NAND state at every width.
  const LeakageModel model;
  for (int w = 2; w <= 4; ++w) {
    const unsigned all = (1u << w) - 1;
    const double worst = model.cell_leakage_na(GateType::Nand, w, all);
    for (unsigned p = 0; p < all; ++p) {
      EXPECT_LT(model.cell_leakage_na(GateType::Nand, w, p), worst);
    }
  }
}

TEST(Leakage, NorAllZerosIsWorstCase) {
  const LeakageModel model;
  for (int w = 2; w <= 4; ++w) {
    const double worst = model.cell_leakage_na(GateType::Nor, w, 0);
    for (unsigned p = 1; p < (1u << w); ++p) {
      EXPECT_LT(model.cell_leakage_na(GateType::Nor, w, p), worst);
    }
  }
}

TEST(Leakage, StackEffectMoreOffDevicesLeakLess) {
  const LeakageModel model;
  // Subthreshold stack effect: the all-off NMOS stack leaks less than a
  // single off device at the weak (bottom) position. (A single off device
  // at the *strong* position can beat all-off once on-PMOS gate leakage is
  // added -- exactly what the paper's own NAND2 table shows: 73 < 78.)
  const double all_off = model.cell_leakage_na(GateType::Nand, 3, 0b000);
  const double weak_off = model.cell_leakage_na(GateType::Nand, 3, 0b011);
  EXPECT_LT(all_off, weak_off + 1e-9);
  EXPECT_LT(model.cell_leakage_na(GateType::Nand, 2, 0b10),
            model.cell_leakage_na(GateType::Nand, 2, 0b00));
}

TEST(Leakage, ExpectedValueOverXMatchesAverage) {
  const LeakageModel model;
  // NAND2 with pin B = X, pin A = 1: expect mean of "10" and "11".
  const std::vector<Logic> ins = {Logic::One, Logic::X};
  const double expected = 0.5 * (model.cell_leakage_na(GateType::Nand, 2, 0b01) +
                                 model.cell_leakage_na(GateType::Nand, 2, 0b11));
  EXPECT_DOUBLE_EQ(model.cell_expected_leakage_na(GateType::Nand, ins), expected);
}

TEST(Leakage, ExpectedValueAllXEnumeratesEverything) {
  const LeakageModel model;
  const std::vector<Logic> ins = {Logic::X, Logic::X};
  double sum = 0;
  for (unsigned p = 0; p < 4; ++p) {
    sum += model.cell_leakage_na(GateType::Nand, 2, p);
  }
  EXPECT_DOUBLE_EQ(model.cell_expected_leakage_na(GateType::Nand, ins), sum / 4);
}

TEST(Leakage, MinLeakagePatternFindsTableMinimum) {
  const LeakageModel model;
  const auto [pat, leak] = model.min_leakage_pattern(GateType::Nand, 2);
  EXPECT_EQ(pat, 0b10u);  // "01" in paper order: A=0, B=1 -> 73 nA
  EXPECT_DOUBLE_EQ(leak, 73.0);
}

TEST(Leakage, CircuitLeakageSumsGates) {
  NetlistBuilder b("two");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_gate(GateType::Not, "n", {"g"});
  b.add_output("n");
  const Netlist nl = b.link();
  const LeakageModel model;
  Simulator sim(nl);
  sim.set_input(nl.find("a"), Logic::One);
  sim.set_input(nl.find("c"), Logic::One);
  sim.eval();
  // NAND2 at 11 -> 408; its output 0 feeds NOT at 0 -> inv_leakage(0).
  const double expected =
      408.0 + model.cell_leakage_na(GateType::Not, 1, 0);
  EXPECT_DOUBLE_EQ(model.circuit_leakage_na(nl, sim.values()), expected);
  EXPECT_DOUBLE_EQ(model.circuit_leakage_power_uw(nl, sim.values(), 0.9),
                   expected * 0.9 * 1e-3);
}

TEST(Leakage, CompositeGatesEstimated) {
  const LeakageModel model;
  // Composite estimates exist and are larger than a single NAND2.
  EXPECT_GT(model.cell_leakage_na(GateType::Xor, 2, 0b01), 200.0);
  EXPECT_GT(model.cell_leakage_na(GateType::And, 2, 0b11),
            model.cell_leakage_na(GateType::Nand, 2, 0b11));
  EXPECT_GT(model.cell_leakage_na(GateType::Mux, 3, 0b000), 0.0);
}

// ---------- power estimator -------------------------------------------------

TEST(PowerEstimator, StaticAveragesLeakageOverCycles) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leakage;
  const CapacitanceModel caps;
  PowerEstimator est(nl, leakage, caps);
  Simulator sim(nl);
  double manual = 0;
  int cycles = 0;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool(rng.next_bool()));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool(rng.next_bool()));
    sim.eval_incremental();
    est.observe(sim.values());
    manual += leakage.circuit_leakage_na(nl, sim.values());
    ++cycles;
  }
  EXPECT_NEAR(est.mean_leakage_na(), manual / cycles, 1e-9);
  EXPECT_NEAR(est.static_uw(), (manual / cycles) * 0.9 * 1e-3, 1e-12);
  EXPECT_EQ(est.cycles_observed(), 10u);
}

TEST(PowerEstimator, DynamicZeroWhenNothingToggles) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leakage;
  const CapacitanceModel caps;
  PowerEstimator est(nl, leakage, caps);
  Simulator sim(nl);
  for (GateId pi : nl.inputs()) sim.set_input(pi, Logic::Zero);
  for (GateId ff : nl.dffs()) sim.set_state(ff, Logic::Zero);
  sim.eval();
  est.observe(sim.values());
  est.observe(sim.values());
  EXPECT_DOUBLE_EQ(est.dynamic_per_hz_uw(), 0.0);
}

TEST(PowerEstimator, DynamicScalesWithVddSquared) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leakage;
  const CapacitanceModel caps;
  PowerConfig low{0.9};
  PowerConfig high{1.8};
  PowerEstimator e1(nl, leakage, caps, low);
  PowerEstimator e2(nl, leakage, caps, high);
  Simulator sim(nl);
  Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool(rng.next_bool()));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool(rng.next_bool()));
    sim.eval_incremental();
    e1.observe(sim.values());
    e2.observe(sim.values());
  }
  EXPECT_NEAR(e2.dynamic_per_hz_uw(), 4.0 * e1.dynamic_per_hz_uw(), 1e-15);
}

// ---------- leakage observability -------------------------------------------

TEST(Observability, InverterSignConvention) {
  // y = NOT(a) with a NAND2 consumer to make leakage depend on a:
  // forcing a=1 puts the NAND input at 0... build a minimal circuit where
  // observability has a predictable sign: single inverter, L(in=1) uses
  // pmos-off state (204 nA) < L(in=0) (265 nA), so obs(a) < 0.
  NetlistBuilder b("inv");
  b.add_input("a");
  b.add_gate(GateType::Not, "y", {"a"});
  b.add_output("y");
  const Netlist nl = b.link();
  const LeakageModel model;
  ObservabilityOptions opts;
  opts.samples = 512;
  const LeakageObservability mc(nl, model, opts);
  EXPECT_LT(mc.obs(nl.find("a")), 0.0);
  // Exact value: L(1) - L(0) = 204 - 265 = -61.
  EXPECT_NEAR(mc.obs(nl.find("a")), -61.0, 1e-6);
}

TEST(Observability, ProbabilisticMatchesExactOnTreeSources) {
  // The probabilistic engine propagates a forced probability *forward*
  // (like the reverse-topological computation of [15], it does not
  // condition upstream of the forced line). For source lines there is no
  // upstream, so on a fanout-free tree it must agree exactly with
  // brute-force conditioning at the sources.
  NetlistBuilder b("tree");
  b.add_input("a");
  b.add_input("c");
  b.add_input("d");
  b.add_gate(GateType::Nand, "g1", {"a", "c"});
  b.add_gate(GateType::Nor, "g2", {"g1", "d"});
  b.add_output("g2");
  const Netlist nl = b.link();
  const LeakageModel model;
  ObservabilityOptions popts;
  popts.method = ObservabilityMethod::Probabilistic;
  const LeakageObservability prob(nl, model, popts);

  // Brute force: enumerate all inputs, average leakage conditioned on each
  // line's value.
  Simulator sim(nl);
  std::vector<double> sum1(nl.num_gates(), 0), sum0(nl.num_gates(), 0);
  std::vector<int> cnt1(nl.num_gates(), 0), cnt0(nl.num_gates(), 0);
  for (unsigned v = 0; v < 8; ++v) {
    sim.set_input(nl.find("a"), from_bool(v & 1));
    sim.set_input(nl.find("c"), from_bool(v & 2));
    sim.set_input(nl.find("d"), from_bool(v & 4));
    sim.eval_incremental();
    const double leak = model.circuit_leakage_na(nl, sim.values());
    for (GateId id = 0; id < nl.num_gates(); ++id) {
      if (sim.value(id) == Logic::One) {
        sum1[id] += leak;
        cnt1[id]++;
      } else {
        sum0[id] += leak;
        cnt0[id]++;
      }
    }
  }
  for (const char* name : {"a", "c", "d"}) {
    const GateId id = nl.find(name);
    ASSERT_TRUE(cnt1[id] > 0 && cnt0[id] > 0);
    const double exact = sum1[id] / cnt1[id] - sum0[id] / cnt0[id];
    EXPECT_NEAR(prob.obs(id), exact, 1e-6) << name;
  }
}

TEST(Observability, MonteCarloApproximatesBruteForceOnS27) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel model;
  ObservabilityOptions mco;
  mco.samples = 4096;
  const LeakageObservability mc(nl, model, mco);
  // Brute force over all 2^7 source assignments.
  Simulator sim(nl);
  std::vector<double> sum1(nl.num_gates(), 0), sum0(nl.num_gates(), 0);
  std::vector<int> cnt1(nl.num_gates(), 0), cnt0(nl.num_gates(), 0);
  const std::size_t n_src = nl.inputs().size() + nl.dffs().size();
  for (unsigned v = 0; v < (1u << n_src); ++v) {
    unsigned bit = 0;
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool((v >> bit++) & 1));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool((v >> bit++) & 1));
    sim.eval_incremental();
    const double leak = model.circuit_leakage_na(nl, sim.values());
    for (GateId id = 0; id < nl.num_gates(); ++id) {
      if (sim.value(id) == Logic::One) {
        sum1[id] += leak;
        cnt1[id]++;
      } else {
        sum0[id] += leak;
        cnt0[id]++;
      }
    }
  }
  int compared = 0;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (cnt1[id] == 0 || cnt0[id] == 0) continue;
    const double exact = sum1[id] / cnt1[id] - sum0[id] / cnt0[id];
    // Monte-Carlo with 4096 samples: expect agreement within a loose band.
    EXPECT_NEAR(mc.obs(id), exact, std::max(40.0, std::abs(exact) * 0.5))
        << nl.gate_name(id);
    ++compared;
  }
  EXPECT_GT(compared, 10);
}

TEST(Observability, SignalProbabilitiesBasic) {
  NetlistBuilder b("p");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::And, "g", {"a", "c"});
  b.add_gate(GateType::Not, "n", {"g"});
  b.add_output("n");
  const Netlist nl = b.link();
  const auto p = signal_probabilities(nl);
  EXPECT_DOUBLE_EQ(p[nl.find("a")], 0.5);
  EXPECT_DOUBLE_EQ(p[nl.find("g")], 0.25);
  EXPECT_DOUBLE_EQ(p[nl.find("n")], 0.75);
}

TEST(Observability, ExpectedGateLeakageWeightsPatterns) {
  const LeakageModel model;
  // NAND2 with p(a)=1, p(b)=0 -> exactly pattern "10" (pin0=1, pin1=0).
  EXPECT_NEAR(expected_gate_leakage_na(model, GateType::Nand, {1.0, 0.0}),
              model.cell_leakage_na(GateType::Nand, 2, 0b01), 1e-9);
  // Uniform probabilities -> table average.
  double avg = 0;
  for (unsigned p = 0; p < 4; ++p) {
    avg += model.cell_leakage_na(GateType::Nand, 2, p);
  }
  avg /= 4;
  EXPECT_NEAR(expected_gate_leakage_na(model, GateType::Nand, {0.5, 0.5}), avg,
              1e-9);
}

}  // namespace
}  // namespace scanpower
