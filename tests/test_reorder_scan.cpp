// Tests for the reordering extensions (the paper's future-work hook) and
// the peak-power tracking.

#include <gtest/gtest.h>

#include <algorithm>

#include "atpg/fault_sim.hpp"
#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "scan/reorder.hpp"
#include "scan/scan_sim.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

TestSet small_tests(const Netlist& nl, int n, std::uint64_t seed) {
  Rng rng(seed);
  TestSet ts;
  for (int i = 0; i < n; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  return ts;
}

TEST(ChainOrder, IdentityIsPermutation) {
  const ScanChainOrder o = ScanChainOrder::identity(5);
  EXPECT_TRUE(o.is_permutation());
  EXPECT_EQ(o.order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ChainOrder, DetectsBrokenPermutations) {
  ScanChainOrder o;
  o.order = {0, 0, 1};
  EXPECT_FALSE(o.is_permutation());
  o.order = {0, 3, 1};
  EXPECT_FALSE(o.is_permutation());
}

TEST(ChainOrder, CostZeroForConstantPatterns) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  TestSet ts;
  TestPattern p;
  p.pi.assign(nl.inputs().size(), Logic::Zero);
  p.ppi.assign(nl.dffs().size(), Logic::Zero);
  ts.patterns.assign(4, p);
  EXPECT_DOUBLE_EQ(
      chain_transition_cost(ts, ScanChainOrder::identity(nl.dffs().size())),
      0.0);
}

TEST(ChainOrder, AlternatingPatternCostsMaximally) {
  // One pattern 0101... creates a boundary at every adjacent pair under
  // identity; sorting the columns (all 0s then all 1s) removes almost all.
  const std::size_t len = 8;
  TestSet ts;
  TestPattern p;
  p.ppi.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    p.ppi[i] = (i % 2) ? Logic::One : Logic::Zero;
  }
  ts.patterns.push_back(p);
  const double ident =
      chain_transition_cost(ts, ScanChainOrder::identity(len));
  ScanChainOrder sorted;
  for (std::size_t i = 0; i < len; i += 2) sorted.order.push_back(i);
  for (std::size_t i = 1; i < len; i += 2) sorted.order.push_back(i);
  EXPECT_LT(chain_transition_cost(ts, sorted), ident);
}

TEST(ReorderCells, ReturnsValidPermutation) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const TestSet ts = small_tests(nl, 30, 7);
  const ScanChainOrder o = reorder_scan_cells(nl, ts);
  EXPECT_EQ(o.order.size(), nl.dffs().size());
  EXPECT_TRUE(o.is_permutation());
}

TEST(ReorderCells, NeverWorseThanIdentityUnderCostModel) {
  for (const char* name : {"s382", "s444", "s344"}) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(name));
    const TestSet ts = small_tests(nl, 40, 11);
    const ScanChainOrder greedy = reorder_scan_cells(nl, ts);
    const ScanChainOrder ident = ScanChainOrder::identity(nl.dffs().size());
    EXPECT_LE(chain_transition_cost(ts, greedy),
              chain_transition_cost(ts, ident) + 1e-9)
        << name;
  }
}

TEST(ReorderVectors, PreservesPatternMultiset) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const TestSet ts = small_tests(nl, 20, 13);
  const TestSet ro = reorder_test_vectors(ts);
  ASSERT_EQ(ro.patterns.size(), ts.patterns.size());
  std::vector<std::string> a, b;
  for (const auto& p : ts.patterns) a.push_back(p.to_string());
  for (const auto& p : ro.patterns) b.push_back(p.to_string());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ReorderVectors, ReducesTotalHammingTourLength) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const TestSet ts = small_tests(nl, 40, 17);
  const TestSet ro = reorder_test_vectors(ts);
  auto tour = [](const TestSet& s) {
    long total = 0;
    for (std::size_t i = 1; i < s.patterns.size(); ++i) {
      for (std::size_t k = 0; k < s.patterns[i].ppi.size(); ++k) {
        total += s.patterns[i].ppi[k] != s.patterns[i - 1].ppi[k];
      }
    }
    return total;
  };
  EXPECT_LE(tour(ro), tour(ts));
}

TEST(ReorderVectors, CoverageUnchanged) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const TestSet ts = generate_tests(nl);
  const TestSet ro = reorder_test_vectors(ts);
  EXPECT_DOUBLE_EQ(fault_coverage(nl, ro.patterns),
                   fault_coverage(nl, ts.patterns));
}

TEST(ScanSimOrder, CustomOrderStillAppliesCorrectBits) {
  // With a reversed chain order, the capture cycle must still see each
  // cell's own bit: cycle counts and determinism confirm protocol
  // integrity; equality of leakage under all-muxed control confirms the
  // mapping (values seen by logic are order-independent then).
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  const TestSet ts = small_tests(nl, 6, 19);
  ScanPowerEvaluator eval(nl, leak, caps);

  ScanChainOrder reversed;
  for (std::size_t i = nl.dffs().size(); i-- > 0;) reversed.order.push_back(i);

  ScanSimOptions with_capture;
  with_capture.include_capture_cycles = true;
  ScanSimOptions with_capture_rev = with_capture;
  with_capture_rev.chain_order = &reversed;

  const ScanPowerResult a = eval.evaluate(ts, {}, {}, with_capture);
  const ScanPowerResult b = eval.evaluate(ts, {}, {}, with_capture_rev);
  EXPECT_EQ(a.cycles, b.cycles);
  // Different order -> different shift states are legal; but both runs
  // must be internally deterministic.
  const ScanPowerResult b2 = eval.evaluate(ts, {}, {}, with_capture_rev);
  EXPECT_DOUBLE_EQ(b.dynamic_per_hz_uw, b2.dynamic_per_hz_uw);
  EXPECT_DOUBLE_EQ(b.static_uw, b2.static_uw);
}

TEST(ScanSimOrder, InvalidOrderRejected) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  const TestSet ts = small_tests(nl, 2, 23);
  ScanPowerEvaluator eval(nl, leak, caps);
  ScanChainOrder bad;
  bad.order = {0, 0, 1};
  ScanSimOptions so;
  so.chain_order = &bad;
  EXPECT_THROW(eval.evaluate(ts, {}, {}, so), Error);
}

TEST(PeakPower, PeakAtLeastMean) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const LeakageModel leak;
  const CapacitanceModel caps;
  const TestSet ts = small_tests(nl, 10, 29);
  ScanPowerEvaluator eval(nl, leak, caps);
  const ScanPowerResult r = eval.evaluate(ts);
  EXPECT_GE(r.peak_dynamic_per_hz_uw, r.dynamic_per_hz_uw);
  EXPECT_GE(r.peak_leakage_na, r.mean_leakage_na);
  EXPECT_GT(r.peak_leakage_na, 0.0);
}

TEST(PeakPower, AllMuxedHasZeroPeakDynamic) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  const TestSet ts = small_tests(nl, 5, 31);
  ScanPowerEvaluator eval(nl, leak, caps);
  std::vector<Logic> pi_ctl(nl.inputs().size(), Logic::One);
  std::vector<Logic> mux_ctl(nl.dffs().size(), Logic::Zero);
  const ScanPowerResult r = eval.evaluate(ts, pi_ctl, mux_ctl);
  EXPECT_DOUBLE_EQ(r.peak_dynamic_per_hz_uw, 0.0);
}

}  // namespace
}  // namespace scanpower

namespace scanpower {
namespace {

/// The multi-chain protocol must deliver every cell's bit by capture
/// time: we verify via the captured next-state equality against a direct
/// functional simulation, for several chain counts.
class MultiChainTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiChainTest, CaptureSeesCorrectBits) {
  const int k = GetParam();
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(41);
  TestSet ts;
  for (int i = 0; i < 5; ++i) ts.patterns.push_back(random_pattern(nl, rng));

  ScanPowerEvaluator eval(nl, leak, caps);
  ScanSimOptions so;
  so.num_chains = k;
  so.include_capture_cycles = true;
  const ScanPowerResult r = eval.evaluate(ts, {}, {}, so);
  const std::size_t lmax =
      (nl.dffs().size() + static_cast<std::size_t>(k) - 1) /
      static_cast<std::size_t>(k);
  EXPECT_EQ(r.cycles, ts.patterns.size() * (lmax + 1));
  EXPECT_GT(r.static_uw, 0.0);
}

TEST_P(MultiChainTest, FewerCyclesThanSingleChain) {
  const int k = GetParam();
  if (k == 1) return;
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(43);
  TestSet ts;
  for (int i = 0; i < 4; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  ScanPowerEvaluator eval(nl, leak, caps);
  ScanSimOptions one;
  ScanSimOptions multi;
  multi.num_chains = k;
  EXPECT_LT(eval.evaluate(ts, {}, {}, multi).cycles,
            eval.evaluate(ts, {}, {}, one).cycles);
}

INSTANTIATE_TEST_SUITE_P(Chains, MultiChainTest, ::testing::Values(1, 2, 3, 7));

TEST(MultiChain, InvalidCountRejected) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  TestSet ts;
  Rng rng(47);
  ts.patterns.push_back(random_pattern(nl, rng));
  ScanPowerEvaluator eval(nl, leak, caps);
  ScanSimOptions so;
  so.num_chains = 0;
  EXPECT_THROW(eval.evaluate(ts, {}, {}, so), Error);
}

}  // namespace
}  // namespace scanpower

namespace scanpower {
namespace {

class ChainLoadingTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChainLoadingTest, EveryCellReceivesItsBit) {
  const int len = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Rng rng(1000 + static_cast<std::uint64_t>(len * 31 + k));
  std::vector<Logic> ppi;
  for (int i = 0; i < len; ++i) ppi.push_back(from_bool(rng.next_bool()));
  // Identity and a random permutation.
  ScanChainOrder ident = ScanChainOrder::identity(static_cast<std::size_t>(len));
  ScanChainOrder shuffled = ident;
  rng.shuffle(shuffled.order);
  for (const ScanChainOrder& order : {ident, shuffled}) {
    const std::vector<Logic> chain = simulate_chain_loading(order, ppi, k);
    ASSERT_EQ(chain.size(), ppi.size());
    for (int p = 0; p < len; ++p) {
      EXPECT_EQ(chain[static_cast<std::size_t>(p)],
                ppi[order.order[static_cast<std::size_t>(p)]])
          << "len=" << len << " k=" << k << " pos=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChainLoadingTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21),
                       ::testing::Values(1, 2, 3, 4, 7)));

}  // namespace
}  // namespace scanpower
