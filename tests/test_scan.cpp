#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "scan/add_mux.hpp"
#include "scan/scan_sim.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

// ---------- AddMUX ----------------------------------------------------------

TEST(AddMux, PlanOnlyMarksSlackyCells) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  const TimingAnalysis sta(nl, model);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const GateId dff = nl.dffs()[i];
    if (nl.fanouts(dff).empty()) {
      EXPECT_FALSE(plan.multiplexed[i]);
      continue;
    }
    const double d_mux = model.mux_delay_ps(model.caps().load_ff(nl, dff));
    const bool fits = d_mux <= sta.slack_ps(dff) + 1e-6;
    EXPECT_EQ(plan.multiplexed[i], fits) << nl.gate_name(dff);
  }
}

TEST(AddMux, SlackMarginReducesCoverage) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s641"));
  const DelayModel model;
  MuxPlanOptions loose;
  MuxPlanOptions tight;
  tight.slack_margin_ps = 100.0;
  const MuxPlan p1 = plan_muxes(nl, model, loose);
  const MuxPlan p2 = plan_muxes(nl, model, tight);
  EXPECT_LE(p2.num_multiplexed, p1.num_multiplexed);
  // Monotonicity: every cell muxed under the tight margin is also muxed
  // under the loose one.
  for (std::size_t i = 0; i < p1.multiplexed.size(); ++i) {
    if (p2.multiplexed[i]) {
      EXPECT_TRUE(p1.multiplexed[i]);
    }
  }
}

TEST(AddMux, PhysicalInsertionKeepsCriticalDelay) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  ASSERT_GT(plan.num_multiplexed, 0u);
  std::vector<Logic> mux_values(nl.dffs().size(), Logic::X);
  for (std::size_t i = 0; i < plan.multiplexed.size(); ++i) {
    if (plan.multiplexed[i]) mux_values[i] = Logic::Zero;
  }
  const Netlist muxed = insert_muxes_physically(nl, plan, mux_values);
  const TimingAnalysis before(nl, model);
  const TimingAnalysis after(muxed, model);
  EXPECT_NEAR(after.critical_delay_ps(), before.critical_delay_ps(), 1e-6);
}

TEST(AddMux, PhysicalInsertionNormalModeTransparent) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  std::vector<Logic> mux_values(nl.dffs().size(), Logic::X);
  for (std::size_t i = 0; i < plan.multiplexed.size(); ++i) {
    if (plan.multiplexed[i]) mux_values[i] = Logic::One;
  }
  GateId se = kInvalidGate;
  const Netlist muxed = insert_muxes_physically(nl, plan, mux_values, &se);
  ASSERT_NE(se, kInvalidGate);

  Simulator orig(nl);
  Simulator mod(muxed);
  Rng rng(61);
  for (int v = 0; v < 64; ++v) {
    mod.set_input(se, Logic::Zero);  // normal mode
    for (GateId pi : nl.inputs()) {
      const Logic val = from_bool(rng.next_bool());
      orig.set_input(pi, val);
      mod.set_input(muxed.find(nl.gate_name(pi)), val);
    }
    for (GateId ff : nl.dffs()) {
      const Logic val = from_bool(rng.next_bool());
      orig.set_state(ff, val);
      mod.set_state(muxed.find(nl.gate_name(ff)), val);
    }
    orig.eval_incremental();
    mod.eval_incremental();
    for (GateId po : nl.outputs()) {
      ASSERT_EQ(orig.value(po), mod.value(muxed.find(nl.gate_name(po))));
    }
    for (GateId ff : nl.dffs()) {
      ASSERT_EQ(orig.next_state(ff),
                mod.next_state(muxed.find(nl.gate_name(ff))));
    }
  }
}

TEST(AddMux, ScanModePresentsConstants) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  ASSERT_GT(plan.num_multiplexed, 0u);
  std::vector<Logic> mux_values(nl.dffs().size(), Logic::X);
  bool flip = false;
  for (std::size_t i = 0; i < plan.multiplexed.size(); ++i) {
    if (plan.multiplexed[i]) {
      mux_values[i] = flip ? Logic::One : Logic::Zero;
      flip = !flip;
    }
  }
  GateId se = kInvalidGate;
  const Netlist muxed = insert_muxes_physically(nl, plan, mux_values, &se);
  Simulator mod(muxed);
  mod.set_input(se, Logic::One);  // scan mode
  Rng rng(63);
  for (GateId pi : nl.inputs()) {
    mod.set_input(muxed.find(nl.gate_name(pi)), from_bool(rng.next_bool()));
  }
  for (GateId ff : nl.dffs()) {
    mod.set_state(muxed.find(nl.gate_name(ff)), from_bool(rng.next_bool()));
  }
  mod.eval();
  for (std::size_t i = 0; i < plan.multiplexed.size(); ++i) {
    if (!plan.multiplexed[i]) continue;
    const GateId mux = muxed.find("mux$" + nl.gate_name(nl.dffs()[i]));
    ASSERT_NE(mux, kInvalidGate);
    EXPECT_EQ(mod.value(mux), mux_values[i]);
  }
}

TEST(AddMux, InsertRejectsMissingConstants) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const MuxPlan plan = plan_muxes(nl, model);
  ASSERT_GT(plan.num_multiplexed, 0u);
  std::vector<Logic> mux_values(nl.dffs().size(), Logic::X);  // all missing
  EXPECT_THROW(insert_muxes_physically(nl, plan, mux_values), Error);
}

// ---------- scan shift simulation ---------------------------------------------

/// Reference implementation: explicit per-cycle simulation used to verify
/// the evaluator's protocol (chain order, shift direction, capture).
struct ReferenceScan {
  const Netlist& nl;
  std::vector<Logic> chain;
  std::vector<Logic> held_pi;
  Simulator sim;
  PowerEstimator power;

  ReferenceScan(const Netlist& n, const LeakageModel& leak,
                const CapacitanceModel& caps)
      : nl(n),
        chain(n.dffs().size(), Logic::Zero),
        held_pi(n.inputs().size(), Logic::Zero),
        sim(n),
        power(n, leak, caps) {}
};

TEST(ScanSim, ChainEndsWithShiftedPattern) {
  // Verify the shift indexing: after L cycles, chain[k] == ppi[k]. We
  // check it indirectly: with include_capture_cycles the capture cycle
  // applies exactly (test.pi, test.ppi), so next-states must match a
  // direct functional simulation.
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(71);
  TestSet ts;
  for (int i = 0; i < 4; ++i) ts.patterns.push_back(random_pattern(nl, rng));

  // Replay the protocol manually and track the applied states.
  std::vector<Logic> chain(nl.dffs().size(), Logic::Zero);
  Simulator ref(nl);
  for (const TestPattern& t : ts.patterns) {
    for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
      // Simulate L shift cycles of the chain registers only.
      for (std::size_t c = chain.size(); c-- > 1;) chain[c] = chain[c - 1];
      chain[0] = t.ppi[chain.size() - 1 - k];
    }
    for (std::size_t c = 0; c < chain.size(); ++c) {
      EXPECT_EQ(chain[c], t.ppi[c]) << "position " << c;
    }
    // Capture.
    ref.set_inputs(t.pi);
    ref.set_states(chain);
    ref.eval_incremental();
    for (std::size_t c = 0; c < chain.size(); ++c) {
      chain[c] = ref.next_state(nl.dffs()[c]);
    }
  }
}

TEST(ScanSim, CycleCountMatchesProtocol) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(73);
  TestSet ts;
  for (int i = 0; i < 5; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  ScanPowerEvaluator eval(nl, leak, caps);
  ScanSimOptions shift_only;
  shift_only.include_capture_cycles = false;
  const ScanPowerResult a = eval.evaluate(ts, {}, {}, shift_only);
  EXPECT_EQ(a.cycles, ts.patterns.size() * nl.dffs().size());
  ScanSimOptions with_capture;
  with_capture.include_capture_cycles = true;
  const ScanPowerResult b = eval.evaluate(ts, {}, {}, with_capture);
  EXPECT_EQ(b.cycles, ts.patterns.size() * (nl.dffs().size() + 1));
}

TEST(ScanSim, MuxControlSuppressesPseudoInputToggles) {
  // With *every* cell multiplexed and all PIs controlled, the logic sees
  // constants during shift: zero dynamic power.
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(79);
  TestSet ts;
  for (int i = 0; i < 6; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  ScanPowerEvaluator eval(nl, leak, caps);
  std::vector<Logic> pi_ctl(nl.inputs().size(), Logic::Zero);
  std::vector<Logic> mux_ctl(nl.dffs().size(), Logic::One);
  const ScanPowerResult r = eval.evaluate(ts, pi_ctl, mux_ctl);
  EXPECT_DOUBLE_EQ(r.dynamic_per_hz_uw, 0.0);
  EXPECT_GT(r.static_uw, 0.0);
}

TEST(ScanSim, TraditionalHasPositiveDynamicPower) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  Rng rng(83);
  TestSet ts;
  for (int i = 0; i < 6; ++i) ts.patterns.push_back(random_pattern(nl, rng));
  ScanPowerEvaluator eval(nl, leak, caps);
  const ScanPowerResult r = eval.evaluate(ts);
  EXPECT_GT(r.dynamic_per_hz_uw, 0.0);
  EXPECT_GT(r.static_uw, 0.0);
}

TEST(ScanSim, DeterministicAcrossRuns) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const LeakageModel leak;
  const CapacitanceModel caps;
  const TestSet ts = generate_tests(nl);
  ScanPowerEvaluator eval(nl, leak, caps);
  const ScanPowerResult a = eval.evaluate(ts);
  const ScanPowerResult b = eval.evaluate(ts);
  EXPECT_DOUBLE_EQ(a.dynamic_per_hz_uw, b.dynamic_per_hz_uw);
  EXPECT_DOUBLE_EQ(a.static_uw, b.static_uw);
}

TEST(ScanSim, PatternSizeMismatchRejected) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const LeakageModel leak;
  const CapacitanceModel caps;
  ScanPowerEvaluator eval(nl, leak, caps);
  TestSet ts;
  TestPattern bad;
  bad.pi.assign(1, Logic::Zero);  // wrong size
  bad.ppi.assign(nl.dffs().size(), Logic::Zero);
  ts.patterns.push_back(bad);
  EXPECT_THROW(eval.evaluate(ts), Error);
}

}  // namespace
}  // namespace scanpower
