// ScanSession: the stateful service API.
//
// Three property groups:
//  1. Option validation at construction -- bad MISR configurations, block
//     widths, thread counts and empty pattern sets throw actionable
//     errors naming the knob, instead of failing deep inside the engines.
//  2. Session-reuse determinism -- for every benchgen profile, results
//     from one long-lived session (repeated + interleaved full/compacted
//     diagnosis, observability and fill calls) are bit-identical to the
//     one-shot engines, across (block_words, num_threads) in {1,4}x{1,4}.
//  3. diagnose_batch -- mixed-evidence batches come back in input order,
//     bit-identical to sequential diagnose() calls, including under a
//     concurrent (4-worker) pool; this test is the ThreadSanitizer hook
//     for the batch fan-out.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "benchgen/benchgen.hpp"
#include "compact/compact_diag.hpp"
#include "compact/signature_log.hpp"
#include "core/dont_care_fill.hpp"
#include "core/session.hpp"
#include "diag/diagnose.hpp"
#include "power/observability.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

/// Expects that constructing a session with `opts` throws an Error whose
/// message mentions `needle` (the knob name).
void expect_ctor_error(const Netlist& nl, const FlowOptions& opts,
                       const std::string& needle) {
  try {
    ScanSession session(Netlist(nl), opts);
    FAIL() << "expected Error mentioning \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

void expect_same_result(const DiagnosisResult& a, const DiagnosisResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.num_faults, b.num_faults) << what;
  EXPECT_EQ(a.num_candidates, b.num_candidates) << what;
  EXPECT_EQ(a.num_dropped, b.num_dropped) << what;
  EXPECT_EQ(a.num_failures, b.num_failures) << what;
  EXPECT_EQ(a.num_windows, b.num_windows) << what;
  EXPECT_EQ(a.num_failing_windows, b.num_failing_windows) << what;
  ASSERT_EQ(a.ranked.size(), b.ranked.size()) << what;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    ASSERT_EQ(a.ranked[i].fault, b.ranked[i].fault) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].fault_index, b.ranked[i].fault_index) << what;
    ASSERT_EQ(a.ranked[i].tfsf, b.ranked[i].tfsf) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].tfsp, b.ranked[i].tfsp) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].tpsf, b.ranked[i].tpsf) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].dropped, b.ranked[i].dropped) << what << " @" << i;
  }
}

// ---------- option validation ------------------------------------------------

TEST(SessionValidationTest, RejectsBadMisrConfig) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  FlowOptions opts;

  opts.misr.width = 3;
  expect_ctor_error(nl, opts, "misr.width");
  opts.misr.width = 65;
  expect_ctor_error(nl, opts, "misr.width");

  opts = FlowOptions{};
  opts.misr.window = 0;
  expect_ctor_error(nl, opts, "misr.window");

  // Missing top polynomial tap: the transition would not be invertible.
  opts = FlowOptions{};
  opts.misr.width = 16;
  opts.misr.poly = 0x0001;
  expect_ctor_error(nl, opts, "top");

  // Polynomial wider than the register.
  opts = FlowOptions{};
  opts.misr.width = 8;
  opts.misr.poly = 0x1ff;
  expect_ctor_error(nl, opts, "misr.poly");
}

TEST(SessionValidationTest, RejectsBadBlockWords) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  FlowOptions opts;
  opts.diag.block_words = 3;
  expect_ctor_error(nl, opts, "diag.block_words");

  opts = FlowOptions{};
  opts.observability.block_words = 5;
  expect_ctor_error(nl, opts, "observability.block_words");

  opts = FlowOptions{};
  opts.fill.block_words = 0;
  expect_ctor_error(nl, opts, "fill.block_words");

  opts = FlowOptions{};
  opts.tpg.fault_sim.block_words = 7;
  expect_ctor_error(nl, opts, "tpg.fault_sim.block_words");
}

TEST(SessionValidationTest, RejectsBadThreadAndSampleCounts) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  FlowOptions opts;
  opts.diag.num_threads = -1;
  expect_ctor_error(nl, opts, "diag.num_threads");

  opts = FlowOptions{};
  opts.observability.samples = 1;
  expect_ctor_error(nl, opts, "observability.samples");

  opts = FlowOptions{};
  opts.fill.trials = 0;
  expect_ctor_error(nl, opts, "fill.trials");
}

TEST(SessionValidationTest, RejectsEmptyAndUnboundPatternSets) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  ScanSession session{Netlist(nl)};

  // Zero-pattern test set.
  EXPECT_THROW(session.bind_patterns({}), Error);

  // Diagnosing before binding names the fix.
  FailureLog log;
  log.num_patterns = 4;
  try {
    session.diagnose(Evidence(log));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bind_patterns"), std::string::npos)
        << e.what();
  }
}

TEST(SessionValidationTest, FullResponseDiagnosisRejectsXPatterns) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  ScanSession session{Netlist(nl)};
  std::vector<TestPattern> pats = random_patterns(nl, 8, 7);
  pats[3].pi[0] = Logic::X;  // an unfilled care-free bit
  session.bind_patterns(pats);

  FailureLog log;
  log.num_patterns = pats.size();
  EXPECT_THROW(session.diagnose(Evidence(log)), Error);
  EXPECT_THROW(session.inject(Fault{nl.find("G10"), -1, false}), Error);

  // The compacted path X-masks instead: the same binding diagnoses fine.
  const Fault f = session.faults()[2];
  MisrConfig cfg;
  cfg.window = 4;
  const SignatureLog slog = session.inject_compacted(f, cfg);
  const DiagnosisResult res = session.diagnose(Evidence(slog));
  if (slog.num_failing_windows() > 0) {
    EXPECT_GE(res.rank_of(f), 1u);
  }
}

// ---------- one entry point, both alternatives -------------------------------

TEST(SessionDiagnoseTest, EvidenceDispatchMatchesOneShotEngines) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 64, 0x5e55);
  const auto faults = collapse_faults(nl);

  FlowOptions opts;
  opts.misr.window = 16;
  ScanSession session(Netlist(nl), opts);
  session.bind_patterns(pats);
  ASSERT_EQ(session.faults().size(), faults.size());

  ResponseCapture cap(nl, opts.diag.block_words);
  SignatureCapture scap(nl, opts.misr, opts.diag.block_words);
  Diagnoser one_shot(nl, opts.diag);
  SignatureDiagnoser one_shot_sig(nl, opts.diag);

  int compared = 0;
  for (std::size_t fi = 5; fi < faults.size() && compared < 6; fi += 53) {
    const FailureLog log = cap.inject(pats, faults[fi]);
    if (log.failures.empty()) continue;
    ++compared;

    // Session injection reproduces the one-shot tester...
    EXPECT_EQ(session.inject(faults[fi]).failures, log.failures);

    // ...and one diagnose() entry point serves both evidence kinds,
    // bit-identical to the dedicated engines.
    expect_same_result(session.diagnose(Evidence(log)),
                       one_shot.diagnose(pats, faults, log), "full");

    const SignatureLog slog = scap.inject(pats, faults[fi]);
    EXPECT_EQ(session.inject_compacted(faults[fi]).observed, slog.observed);
    expect_same_result(session.diagnose(Evidence(slog)),
                       one_shot_sig.diagnose(pats, faults, slog), "compact");
  }
  EXPECT_GE(compared, 3);
}

TEST(SessionDiagnoseTest, RebindInvalidatesPatternKeyedCaches) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  const auto pats_a = random_patterns(nl, 48, 0xaaaa);
  const auto pats_b = random_patterns(nl, 80, 0xbbbb);

  ScanSession session{Netlist(nl)};
  Diagnoser one_shot(nl, DiagnosisOptions{});
  ResponseCapture cap(nl, 4);

  const Fault f = faults[17];
  for (const auto* pats : {&pats_a, &pats_b, &pats_a}) {
    session.bind_patterns(*pats);
    const FailureLog log = cap.inject(*pats, f);
    if (log.failures.empty()) continue;
    expect_same_result(session.diagnose(Evidence(log)),
                       one_shot.diagnose(*pats, faults, log), "rebind");
  }
}

// ---------- session-reuse determinism acceptance -----------------------------

// For every benchgen profile and every (block_words, num_threads) in
// {1,4}x{1,4}: one long-lived session serves repeated and interleaved
// full-response diagnosis, compacted diagnosis, observability and
// don't-care fill calls; every result must be bit-identical to the
// corresponding one-shot engine call, and the diagnosis rankings must
// also be bit-identical across all four configurations.
TEST(SessionReuseAcceptance, InterleavedCallsMatchOneShotOnAllProfiles) {
  for (const SynthProfile& profile : iscas89_profiles()) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(profile.name));
    const auto faults = collapse_faults(nl);
    const auto pats = random_patterns(nl, 48, 0x5e5510 + profile.seed);

    // Two detected faults per profile: one early, one late.
    FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
    const FaultSimResult det = fsim.run(pats, faults);
    std::vector<std::size_t> sample;
    for (std::size_t fi = 0; fi < faults.size() && sample.size() < 1; ++fi) {
      if (det.detected[fi]) sample.push_back(fi);
    }
    for (std::size_t fi = faults.size(); fi-- > 0 && sample.size() < 2;) {
      if (det.detected[fi]) sample.push_back(fi);
    }
    ASSERT_EQ(sample.size(), 2u) << profile.name;
    const Fault f0 = faults[sample[0]];
    const Fault f1 = faults[sample[1]];

    // One-shot logs (shared across configurations; injection itself is
    // width-independent, which ResponseCaptureTest already guards).
    ResponseCapture cap(nl, 4);
    const FailureLog log0 = cap.inject(pats, f0);
    const FailureLog log1 = cap.inject(pats, f1);

    std::vector<bool> eligible(nl.dffs().size());
    for (std::size_t i = 0; i < eligible.size(); ++i) eligible[i] = i % 2 == 0;

    DiagnosisResult ref_full, ref_compact;
    bool have_ref = false;
    for (int words : {1, 4}) {
      for (int threads : {1, 4}) {
        FlowOptions opts;
        opts.diag.block_words = words;
        opts.diag.num_threads = threads;
        opts.misr.window = 16;  // 3 windows over 48 patterns
        opts.observability.samples = 64;
        opts.observability.block_words = words;
        opts.observability.num_threads = threads;
        opts.fill.trials = 8;
        opts.fill.block_words = words;

        ScanSession session(Netlist(nl), opts);
        session.bind_patterns(pats);
        SignatureCapture scap(nl, opts.misr, words);
        const SignatureLog slog0 = scap.inject(pats, f0);
        const SignatureLog slog1 = scap.inject(pats, f1);

        const std::string tag =
            profile.name + " W=" + std::to_string(words) +
            " T=" + std::to_string(threads);

        // Interleave every engine through the one session, repeating the
        // first diagnosis at the end: reuse must never change a result.
        const DiagnosisResult full_a = session.diagnose(Evidence(log0));
        const DiagnosisResult compact_a = session.diagnose(Evidence(slog1));
        const std::vector<double> obs = session.observability().values();
        std::vector<Logic> pi(nl.inputs().size(), Logic::X);
        std::vector<Logic> mux(nl.dffs().size(), Logic::X);
        const FillResult fill = session.fill(pi, mux, eligible);
        const DiagnosisResult full_b = session.diagnose(Evidence(log1));
        const DiagnosisResult compact_b = session.diagnose(Evidence(slog0));
        const DiagnosisResult full_a2 = session.diagnose(Evidence(log0));
        expect_same_result(full_a, full_a2, tag + " repeat");

        // One-shot references with identical options.
        Diagnoser one_shot(nl, opts.diag);
        expect_same_result(full_a, one_shot.diagnose(pats, faults, log0),
                           tag + " full0");
        expect_same_result(full_b, one_shot.diagnose(pats, faults, log1),
                           tag + " full1");
        SignatureDiagnoser one_shot_sig(nl, opts.diag);
        expect_same_result(compact_a,
                           one_shot_sig.diagnose(pats, faults, slog1),
                           tag + " compact1");
        expect_same_result(compact_b,
                           one_shot_sig.diagnose(pats, faults, slog0),
                           tag + " compact0");

        const LeakageObservability obs_ref(nl, session.leakage_model(),
                                           opts.observability);
        ASSERT_EQ(obs.size(), obs_ref.values().size()) << tag;
        for (std::size_t g = 0; g < obs.size(); ++g) {
          ASSERT_EQ(obs[g], obs_ref.values()[g]) << tag << " gate " << g;
        }

        std::vector<Logic> pi_ref(nl.inputs().size(), Logic::X);
        std::vector<Logic> mux_ref(nl.dffs().size(), Logic::X);
        const FillResult fill_ref = fill_dont_cares_min_leakage(
            nl, session.leakage_model(), pi_ref, mux_ref, eligible, opts.fill);
        EXPECT_EQ(fill.best_leakage_na, fill_ref.best_leakage_na) << tag;
        EXPECT_EQ(pi, pi_ref) << tag;
        EXPECT_EQ(mux, mux_ref) << tag;

        // Rankings are additionally bit-identical across configurations.
        EXPECT_GE(full_a.rank_of(f0), 1u) << tag;
        if (!have_ref) {
          ref_full = full_a;
          ref_compact = compact_a;
          have_ref = true;
        } else {
          expect_same_result(full_a, ref_full, tag + " cross-config full");
          expect_same_result(compact_a, ref_compact,
                             tag + " cross-config compact");
        }
      }
    }
  }
}

// ---------- diagnose_batch ---------------------------------------------------

// A mixed batch on a concurrent (4-worker) pool must reproduce sequential
// diagnose() results in input order. Run under TSan, this is the data-race
// check for the batch fan-out (logs scored concurrently by different
// workers against the shared good-block cache).
TEST(SessionBatchTest, ConcurrentMixedBatchMatchesSequential) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s713"));
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 96, 0xba7c4);

  FlowOptions opts;
  opts.diag.num_threads = 4;
  opts.misr.window = 16;
  ScanSession session(Netlist(nl), opts);
  session.bind_patterns(pats);

  // 8 full logs + 2 signature logs, all from distinct injected faults.
  std::vector<Evidence> evidence;
  std::vector<Fault> injected;
  for (std::size_t fi = 3; fi < faults.size() && injected.size() < 10;
       fi += 97) {
    const Fault f = faults[fi];
    if (injected.size() % 5 == 4) {
      const SignatureLog slog = session.inject_compacted(f);
      if (slog.num_failing_windows() == 0) continue;
      evidence.push_back(slog);
    } else {
      const FailureLog log = session.inject(f);
      if (log.failures.empty()) continue;
      evidence.push_back(log);
    }
    injected.push_back(f);
  }
  ASSERT_GE(evidence.size(), 6u);

  const std::vector<DiagnosisResult> batch = session.diagnose_batch(evidence);
  ASSERT_EQ(batch.size(), evidence.size());
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    const DiagnosisResult seq = session.diagnose(evidence[i]);
    expect_same_result(batch[i], seq, "batch entry " + std::to_string(i));
    EXPECT_EQ(batch[i].rank_of(injected[i]), 1u) << i;
  }

  // A single-worker session produces the identical batch.
  FlowOptions serial = opts;
  serial.diag.num_threads = 1;
  ScanSession session1(Netlist(nl), serial);
  session1.bind_patterns(pats);
  const std::vector<DiagnosisResult> batch1 = session1.diagnose_batch(evidence);
  ASSERT_EQ(batch1.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_result(batch[i], batch1[i],
                       "T=1 vs T=4 batch entry " + std::to_string(i));
  }

  EXPECT_TRUE(session.diagnose_batch({}).empty());
}

// Batch scoring must also agree past the good-block cache cap (streaming
// path): many single-word blocks force per-worker streaming simulators.
TEST(SessionBatchTest, StreamingBatchMatchesSequential) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  // > 256 blocks at W=1.
  const auto pats = random_patterns(nl, 300 * 64 + 9, 0x57e0);

  FlowOptions opts;
  opts.diag.block_words = 1;
  opts.diag.num_threads = 4;
  ScanSession session(Netlist(nl), opts);
  session.bind_patterns(pats);

  std::vector<Evidence> evidence;
  std::vector<Fault> injected;
  for (std::size_t fi = 11; fi < faults.size() && injected.size() < 3;
       fi += 241) {
    const FailureLog log = session.inject(faults[fi]);
    if (log.failures.empty()) continue;
    evidence.push_back(log);
    injected.push_back(faults[fi]);
  }
  ASSERT_GE(evidence.size(), 2u);

  const std::vector<DiagnosisResult> batch = session.diagnose_batch(evidence);
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    expect_same_result(batch[i], session.diagnose(evidence[i]),
                       "streaming batch entry " + std::to_string(i));
    EXPECT_EQ(batch[i].rank_of(injected[i]), 1u);
  }
}

}  // namespace
}  // namespace scanpower
