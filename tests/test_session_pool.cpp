// Multi-tenant service layer: DesignContext sharing, SessionPool LRU
// eviction and the DiagnosisQueue, under concurrency.
//
// House rule under test: every diagnosis is bit-identical across
// (block_words, num_threads) AND across tenancy -- N threads sharing one
// published DesignContext through a SessionPool must return byte-equal
// results to isolated per-tenant sequential sessions, even while the
// pool evicts contexts mid-flight. The suite runs under TSan in CI
// (ctest -R test_session_pool), so any mutation after publish -- a lazy
// cone miss, an unsynchronized tally -- surfaces as a race, not a flake.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "atpg/fault.hpp"
#include "benchgen/benchgen.hpp"
#include "core/session.hpp"
#include "core/session_pool.hpp"
#include "core/work_queue.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

void expect_same_result(const DiagnosisResult& a, const DiagnosisResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.num_faults, b.num_faults) << what;
  EXPECT_EQ(a.num_candidates, b.num_candidates) << what;
  EXPECT_EQ(a.num_dropped, b.num_dropped) << what;
  EXPECT_EQ(a.num_failures, b.num_failures) << what;
  EXPECT_EQ(a.num_windows, b.num_windows) << what;
  EXPECT_EQ(a.num_failing_windows, b.num_failing_windows) << what;
  ASSERT_EQ(a.ranked.size(), b.ranked.size()) << what;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    ASSERT_EQ(a.ranked[i].fault, b.ranked[i].fault) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].fault_index, b.ranked[i].fault_index) << what;
    ASSERT_EQ(a.ranked[i].tfsf, b.ranked[i].tfsf) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].tfsp, b.ranked[i].tfsp) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].tpsf, b.ranked[i].tpsf) << what << " @" << i;
    ASSERT_EQ(a.ranked[i].dropped, b.ranked[i].dropped) << what << " @" << i;
  }
}

FlowOptions make_opts(int block_words, int threads) {
  FlowOptions o;
  o.diag.block_words = block_words;
  o.diag.num_threads = threads;
  return o;
}

/// One design's fixture: netlist, patterns, mixed evidence (full failure
/// logs and MISR signature logs) and the per-tenant sequential reference
/// results from an isolated owning ScanSession.
struct Fixture {
  Netlist nl;
  std::vector<TestPattern> pats;
  std::vector<Evidence> evidence;
  std::vector<DiagnosisResult> reference;
};

Fixture make_fixture(const std::string& name, int num_patterns,
                     std::uint64_t seed, const FlowOptions& opts) {
  Fixture fx;
  fx.nl = map_to_nand_nor_inv(make_circuit(name));
  fx.pats = random_patterns(fx.nl, num_patterns, seed);
  const auto faults = collapse_faults(fx.nl);
  ScanSession ref(fx.nl, opts);
  ref.bind_patterns(fx.pats);
  for (std::size_t i = 0; i < 6; ++i) {
    const Fault& f = faults[(i * 37 + 5) % faults.size()];
    if (i % 3 == 2) {
      fx.evidence.emplace_back(ref.inject_compacted(f));
    } else {
      fx.evidence.emplace_back(ref.inject(f));
    }
  }
  for (const Evidence& ev : fx.evidence) {
    fx.reference.push_back(ref.diagnose(ev));
  }
  return fx;
}

// ---------- DesignContext ---------------------------------------------------

TEST(DesignContextTest, ValidatesOptionsLikeASession) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  FlowOptions opts;
  opts.diag.block_words = 3;
  try {
    DesignContext ctx(nl, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("diag.block_words"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("DesignContext"), std::string::npos);
  }
}

TEST(DesignContextTest, HashDistinguishesDesignsAndIsStable) {
  const Netlist s27 = map_to_nand_nor_inv(make_s27());
  const Netlist s344 = map_to_nand_nor_inv(make_iscas89_like("s344"));
  EXPECT_EQ(DesignContext::hash_design(s27), DesignContext::hash_design(s27));
  EXPECT_NE(DesignContext::hash_design(s27),
            DesignContext::hash_design(s344));
  DesignContext ctx{Netlist(s27)};
  EXPECT_EQ(ctx.design_hash(), DesignContext::hash_design(s27));
}

TEST(DesignContextTest, TenantSessionMatchesOwningSession) {
  const FlowOptions opts = make_opts(4, 2);
  Fixture fx = make_fixture("s344", 72, 0xc1a0, opts);
  auto ctx = std::make_shared<const DesignContext>(Netlist(fx.nl), opts);
  ScanSession tenant(ctx, opts);
  EXPECT_EQ(&tenant.netlist(), &ctx->netlist());
  tenant.bind_patterns(fx.pats);
  for (std::size_t i = 0; i < fx.evidence.size(); ++i) {
    expect_same_result(tenant.diagnose(fx.evidence[i]), fx.reference[i],
                       "tenant log " + std::to_string(i));
  }
  // The one-argument form inherits the context's options.
  ScanSession inherited(ctx);
  EXPECT_EQ(inherited.options().diag.block_words, 4);
  EXPECT_EQ(inherited.options().diag.num_threads, 2);
}

// ---------- SessionPool -----------------------------------------------------

TEST(SessionPoolTest, SharesContextsAndEvictsLru) {
  const Netlist s27 = map_to_nand_nor_inv(make_s27());
  const Netlist s344 = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const Netlist s382 = map_to_nand_nor_inv(make_iscas89_like("s382"));
  SessionPool pool(/*capacity=*/2);

  auto a = pool.acquire(s27);
  auto a2 = pool.acquire(s27);
  EXPECT_EQ(a.get(), a2.get()) << "hit must share the built context";
  auto b = pool.acquire(s344);
  EXPECT_EQ(pool.size(), 2u);

  // Third design past capacity: the LRU entry (s27) is evicted, but the
  // in-flight shared_ptr stays valid.
  auto c = pool.acquire(s382);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(a->netlist().name(), "s27");
  auto a3 = pool.acquire(s27);  // rebuilt: a fresh context
  EXPECT_NE(a3.get(), a.get());
}

TEST(SessionPoolTest, RejectsZeroCapacity) {
  EXPECT_THROW(SessionPool(0), Error);
}

// The acceptance test: N client threads x M designs hammer one
// SessionPool with mixed full/compacted evidence while eviction churns
// contexts mid-flight (capacity < M); every result must be byte-equal to
// the isolated per-tenant sequential reference, at every (W, T).
TEST(SessionPoolTest, ConcurrentTenantsMatchSequentialAtEveryWT) {
  const char* kDesigns[] = {"s27", "s344", "s382"};
  for (const auto& [words, threads] : {std::pair{1, 1}, {4, 1}, {1, 4},
                                       {4, 4}}) {
    const FlowOptions opts = make_opts(words, threads);
    std::vector<Fixture> fx;
    for (int d = 0; d < 3; ++d) {
      fx.push_back(make_fixture(kDesigns[d], 48 + 16 * d,
                                0xf00d + static_cast<std::uint64_t>(d),
                                opts));
    }
    SessionPool pool(/*capacity=*/2);  // < M designs: eviction mid-flight
    constexpr int kClients = 6;
    constexpr int kRounds = 3;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRounds; ++r) {
          const Fixture& f = fx[static_cast<std::size_t>(c + r) % fx.size()];
          // acquire churns the LRU; tenant sessions outlive eviction.
          auto ctx = pool.acquire(f.nl, opts);
          ScanSession tenant(ctx, opts);
          tenant.bind_patterns(f.pats);
          for (std::size_t i = 0; i < f.evidence.size(); ++i) {
            expect_same_result(tenant.diagnose(f.evidence[i]),
                               f.reference[i],
                               f.nl.name() + " client " + std::to_string(c) +
                                   " W" + std::to_string(words) + " T" +
                                   std::to_string(threads));
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
}

// ---------- DiagnosisQueue --------------------------------------------------

TEST(DiagnosisQueueTest, SubmitMatchesSequentialAcrossDesigns) {
  const FlowOptions opts = make_opts(4, 2);
  std::vector<Fixture> fx;
  fx.push_back(make_fixture("s27", 40, 0x9a9a, opts));
  fx.push_back(make_fixture("s344", 64, 0x7b7b, opts));

  Telemetry telem;
  DiagnosisQueue::Options qo;
  qo.max_batch = 4;  // force multi-batch coalescing
  DiagnosisQueue queue(qo, &telem);
  std::vector<DiagnosisQueue::DesignKey> keys;
  for (const Fixture& f : fx) keys.push_back(queue.open(f.nl, opts, f.pats));

  // Interleave submissions across designs from several client threads;
  // futures come back per request, so ordering is trivially preserved.
  struct PendingRef {
    std::future<DiagnosisResult> fut;
    const DiagnosisResult* ref;
    std::string what;
  };
  std::vector<PendingRef> pending;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t d = 0; d < fx.size(); ++d) {
      for (std::size_t i = 0; i < fx[d].evidence.size(); ++i) {
        pending.push_back({queue.submit(keys[d], fx[d].evidence[i]),
                           &fx[d].reference[i],
                           fx[d].nl.name() + " log " + std::to_string(i)});
      }
    }
  }
  for (PendingRef& p : pending) {
    expect_same_result(p.fut.get(), *p.ref, p.what);
  }
  // Futures resolve before the dispatcher retires the batch, so quiesce
  // through drain() (the documented barrier) before reading depth.
  queue.drain();
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(DiagnosisQueueTest, BadLogPoisonsOnlyItsOwnFuture) {
  const FlowOptions opts = make_opts(1, 1);
  Fixture fx = make_fixture("s27", 32, 0xbad, opts);

  DiagnosisQueue queue;
  const auto key = queue.open(fx.nl, opts, fx.pats);
  FailureLog bad;
  bad.num_patterns = 99;  // does not match the bound set
  auto good_before = queue.submit(key, fx.evidence[0]);
  auto poisoned = queue.submit(key, Evidence(bad));
  auto good_after = queue.submit(key, fx.evidence[1]);
  expect_same_result(good_before.get(), fx.reference[0], "before bad log");
  EXPECT_THROW(poisoned.get(), Error);
  expect_same_result(good_after.get(), fx.reference[1], "after bad log");
}

TEST(DiagnosisQueueTest, SubmitRejectsUnknownDesign) {
  DiagnosisQueue queue;
  EXPECT_THROW(queue.submit(0xdead, Evidence(FailureLog{})), Error);
}

}  // namespace
}  // namespace scanpower
