#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "sim/logic.hpp"
#include "sim/simulator.hpp"
#include "sim/toggles.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

// ---------- 3-valued logic ------------------------------------------------

TEST(Logic, CharRoundTrip) {
  EXPECT_EQ(logic_char(Logic::Zero), '0');
  EXPECT_EQ(logic_char(Logic::One), '1');
  EXPECT_EQ(logic_char(Logic::X), 'x');
  EXPECT_EQ(logic_from_char('0'), Logic::Zero);
  EXPECT_EQ(logic_from_char('1'), Logic::One);
  EXPECT_EQ(logic_from_char('x'), Logic::X);
  EXPECT_EQ(logic_from_char('-'), Logic::X);
  EXPECT_THROW(logic_from_char('z'), Error);
}

TEST(Logic, StringHelpers) {
  const auto v = logic_vector("01x");
  EXPECT_EQ(logic_string(v), "01x");
}

TEST(Logic, NotKleene) {
  EXPECT_EQ(logic_not(Logic::Zero), Logic::One);
  EXPECT_EQ(logic_not(Logic::One), Logic::Zero);
  EXPECT_EQ(logic_not(Logic::X), Logic::X);
}

struct GateEvalCase {
  GateType type;
  const char* ins;
  char out;
};

class GateEvalTest : public ::testing::TestWithParam<GateEvalCase> {};

TEST_P(GateEvalTest, Evaluates) {
  const GateEvalCase& c = GetParam();
  const auto ins = logic_vector(c.ins);
  EXPECT_EQ(eval_gate(c.type, ins), logic_from_char(c.out))
      << gate_type_name(c.type) << "(" << c.ins << ")";
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, GateEvalTest,
    ::testing::Values(
        // AND: controlling 0 dominates X.
        GateEvalCase{GateType::And, "11", '1'},
        GateEvalCase{GateType::And, "10", '0'},
        GateEvalCase{GateType::And, "0x", '0'},
        GateEvalCase{GateType::And, "1x", 'x'},
        GateEvalCase{GateType::And, "111", '1'},
        GateEvalCase{GateType::And, "x0x", '0'},
        GateEvalCase{GateType::Nand, "11", '0'},
        GateEvalCase{GateType::Nand, "0x", '1'},
        GateEvalCase{GateType::Nand, "x1", 'x'},
        GateEvalCase{GateType::Or, "00", '0'},
        GateEvalCase{GateType::Or, "1x", '1'},
        GateEvalCase{GateType::Or, "0x", 'x'},
        GateEvalCase{GateType::Nor, "00", '1'},
        GateEvalCase{GateType::Nor, "x1", '0'},
        GateEvalCase{GateType::Nor, "x0", 'x'},
        GateEvalCase{GateType::Xor, "10", '1'},
        GateEvalCase{GateType::Xor, "11", '0'},
        GateEvalCase{GateType::Xor, "1x", 'x'},
        GateEvalCase{GateType::Xor, "110", '0'},
        GateEvalCase{GateType::Xnor, "10", '0'},
        GateEvalCase{GateType::Xnor, "x0", 'x'},
        GateEvalCase{GateType::Not, "0", '1'},
        GateEvalCase{GateType::Not, "x", 'x'},
        GateEvalCase{GateType::Buf, "1", '1'},
        // MUX(select, a, b).
        GateEvalCase{GateType::Mux, "001", '0'},
        GateEvalCase{GateType::Mux, "101", '1'},
        GateEvalCase{GateType::Mux, "x11", '1'},  // both data agree
        GateEvalCase{GateType::Mux, "x01", 'x'},
        GateEvalCase{GateType::Const0, "", '0'},
        GateEvalCase{GateType::Const1, "", '1'}));

// ---------- simulator -----------------------------------------------------

Netlist xor_tree() {
  NetlistBuilder b("xt");
  b.add_input("a");
  b.add_input("b");
  b.add_input("c");
  b.add_gate(GateType::Xor, "x1", {"a", "b"});
  b.add_gate(GateType::Xor, "x2", {"x1", "c"});
  b.add_output("x2");
  return b.link();
}

TEST(Simulator, FullEvalMatchesTruth) {
  const Netlist nl = xor_tree();
  Simulator sim(nl);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        sim.set_input(nl.find("a"), from_bool(a));
        sim.set_input(nl.find("b"), from_bool(b));
        sim.set_input(nl.find("c"), from_bool(c));
        sim.eval();
        EXPECT_EQ(sim.value(nl.find("x2")), from_bool((a ^ b ^ c) != 0));
      }
    }
  }
}

TEST(Simulator, SourcesDefaultToX) {
  const Netlist nl = xor_tree();
  Simulator sim(nl);
  sim.eval();
  EXPECT_EQ(sim.value(nl.find("x2")), Logic::X);
}

TEST(Simulator, IncrementalMatchesFullRandomized) {
  const Netlist nl = make_s27();
  Simulator inc(nl);
  Simulator full(nl);
  Rng rng(123);
  for (int iter = 0; iter < 200; ++iter) {
    // Random partial update: flip a few sources, sometimes to X.
    for (GateId pi : nl.inputs()) {
      if (rng.next_below(3) == 0) {
        const Logic v = rng.next_below(4) == 0 ? Logic::X
                                               : from_bool(rng.next_bool());
        inc.set_input(pi, v);
        full.set_input(pi, v);
      }
    }
    for (GateId ff : nl.dffs()) {
      if (rng.next_below(3) == 0) {
        const Logic v = from_bool(rng.next_bool());
        inc.set_state(ff, v);
        full.set_state(ff, v);
      }
    }
    inc.eval_incremental();
    full.eval();
    for (GateId id = 0; id < nl.num_gates(); ++id) {
      ASSERT_EQ(inc.value(id), full.value(id))
          << "gate " << nl.gate_name(id) << " iter " << iter;
    }
  }
}

TEST(Simulator, CaptureMovesDToQ) {
  const Netlist nl = make_s27();
  Simulator sim(nl);
  for (GateId pi : nl.inputs()) sim.set_input(pi, Logic::Zero);
  for (GateId ff : nl.dffs()) sim.set_state(ff, Logic::Zero);
  sim.eval();
  std::vector<Logic> expected;
  for (GateId ff : nl.dffs()) expected.push_back(sim.next_state(ff));
  sim.capture();
  sim.eval_incremental();
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    EXPECT_EQ(sim.value(nl.dffs()[i]), expected[i]);
  }
}

TEST(Simulator, SetInputsSpanApi) {
  const Netlist nl = make_s27();
  Simulator sim(nl);
  const auto pis = logic_vector("0101");
  const auto ffs = logic_vector("110");
  sim.set_inputs(pis);
  sim.set_states(ffs);
  sim.eval();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    EXPECT_EQ(sim.value(nl.inputs()[i]), pis[i]);
  }
  EXPECT_THROW(sim.set_inputs(logic_vector("01")), Error);
}

// ---------- toggle counting ------------------------------------------------

TEST(Toggles, WeightedCount) {
  const std::vector<Logic> before = logic_vector("0011x");
  const std::vector<Logic> after = logic_vector("0110x");
  const std::vector<double> w{1, 2, 4, 8, 16};
  // Positions 1 (0->1): 2, 2 (1->1): 0, wait: before=0,0,1,1,x after=0,1,1,0,x
  // toggles at pos1 (w=2) and pos3 (w=8).
  EXPECT_DOUBLE_EQ(weighted_toggles(before, after, w), 10.0);
}

TEST(Toggles, XTransitionsCountHalf) {
  const std::vector<Logic> before = logic_vector("x0");
  const std::vector<Logic> after = logic_vector("1x");
  const std::vector<double> w{2, 4};
  EXPECT_DOUBLE_EQ(weighted_toggles(before, after, w), 1.0 + 2.0);
}

TEST(Toggles, SizeMismatchThrows) {
  const std::vector<Logic> a = logic_vector("01");
  const std::vector<Logic> b = logic_vector("0");
  const std::vector<double> w{1, 1};
  EXPECT_THROW(weighted_toggles(a, b, w), Error);
}

TEST(Toggles, AccumulatorAverages) {
  ToggleAccumulator acc({1.0, 1.0});
  acc.observe(logic_vector("00"));
  acc.observe(logic_vector("11"));  // 2 toggles
  acc.observe(logic_vector("10"));  // 1 toggle
  EXPECT_EQ(acc.cycles(), 2u);
  EXPECT_DOUBLE_EQ(acc.total(), 3.0);
  EXPECT_DOUBLE_EQ(acc.per_cycle(), 1.5);
  acc.reset();
  EXPECT_EQ(acc.cycles(), 0u);
  EXPECT_DOUBLE_EQ(acc.per_cycle(), 0.0);
}

}  // namespace
}  // namespace scanpower
