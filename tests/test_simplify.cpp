// Tests for structural simplification and ATPG-based redundancy removal.

#include <gtest/gtest.h>

#include "atpg/redundancy.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "netlist/simplify.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

/// Random-simulation equivalence at the PI/PO/DFF interface.
void expect_equiv(const Netlist& a, const Netlist& b, int vectors,
                  std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  Simulator sa(a);
  Simulator sb(b);
  Rng rng(seed);
  for (int v = 0; v < vectors; ++v) {
    for (std::size_t k = 0; k < a.inputs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_input(a.inputs()[k], val);
      sb.set_input(b.find(a.gate_name(a.inputs()[k])), val);
    }
    for (std::size_t k = 0; k < a.dffs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_state(a.dffs()[k], val);
      sb.set_state(b.find(a.gate_name(a.dffs()[k])), val);
    }
    sa.eval_incremental();
    sb.eval_incremental();
    for (std::size_t k = 0; k < a.outputs().size(); ++k) {
      ASSERT_EQ(sa.value(a.outputs()[k]),
                sb.value(b.find(a.gate_name(a.outputs()[k]))))
          << "vector " << v;
    }
    for (std::size_t k = 0; k < a.dffs().size(); ++k) {
      ASSERT_EQ(sa.next_state(a.dffs()[k]),
                sb.next_state(b.find(a.gate_name(a.dffs()[k])))) << v;
    }
  }
}

TEST(Simplify, ConstantFoldsThroughAndChain) {
  NetlistBuilder b("cf");
  b.add_input("a");
  b.add_gate(GateType::Const0, "zero", {});
  b.add_gate(GateType::And, "g1", {"a", "zero"});  // = 0
  b.add_gate(GateType::Or, "g2", {"g1", "a"});     // = a
  b.add_gate(GateType::Not, "y", {"g2"});          // = !a
  b.add_output("y");
  SimplifyStats stats;
  const Netlist s = simplify(b.link(), &stats);
  EXPECT_TRUE(stats.changed());
  // Only the inverter (and the PI) should survive.
  const GateId y = s.find("y");
  ASSERT_NE(y, kInvalidGate);
  EXPECT_EQ(s.type(y), GateType::Not);
  EXPECT_EQ(s.fanins(y)[0], s.find("a"));
}

TEST(Simplify, ControlledGateBecomesConstantPo) {
  NetlistBuilder b("cg");
  b.add_input("a");
  b.add_gate(GateType::Const1, "one", {});
  b.add_gate(GateType::Or, "y", {"a", "one"});  // = 1
  b.add_output("y");
  const Netlist s = simplify(b.link());
  // PO y must survive as a net evaluating to constant 1.
  Simulator sim(s);
  sim.set_input(s.find("a"), Logic::Zero);
  sim.eval();
  EXPECT_EQ(sim.value(s.find("y")), Logic::One);
}

TEST(Simplify, XorCancellation) {
  NetlistBuilder b("xc");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Xor, "y", {"a", "c", "a"});  // = c
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist s = simplify(nl);
  expect_equiv(nl, s, 8, 3);
  // y aliases c: surrogate buffer expected.
  const GateId y = s.find("y");
  ASSERT_NE(y, kInvalidGate);
  EXPECT_EQ(s.type(y), GateType::Buf);
}

TEST(Simplify, DuplicateAndPinsDrop) {
  NetlistBuilder b("dup");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "y", {"a", "a", "c"});
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist s = simplify(nl);
  expect_equiv(nl, s, 8, 5);
  EXPECT_EQ(s.fanins(s.find("y")).size(), 2u);
}

TEST(Simplify, MuxConstantSelect) {
  NetlistBuilder b("mux");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Const1, "one", {});
  b.add_gate(GateType::Mux, "y", {"one", "a", "c"});  // = c
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist s = simplify(nl);
  expect_equiv(nl, s, 8, 7);
}

TEST(Simplify, DeadLogicRemoved) {
  NetlistBuilder b("dead");
  b.add_input("a");
  b.add_gate(GateType::Not, "used", {"a"});
  b.add_gate(GateType::Not, "unused1", {"a"});
  b.add_gate(GateType::Nand, "unused2", {"a", "unused1"});
  b.add_output("used");
  SimplifyStats stats;
  const Netlist s = simplify(b.link(), &stats);
  EXPECT_EQ(s.find("unused1"), kInvalidGate);
  EXPECT_EQ(s.find("unused2"), kInvalidGate);
  EXPECT_GE(stats.gates_removed, 2u);
}

TEST(Simplify, DffInterfacePreserved) {
  NetlistBuilder b("ffp");
  b.add_input("a");
  b.add_gate(GateType::Const0, "zero", {});
  b.add_gate(GateType::And, "d", {"a", "zero"});  // DFF captures constant 0
  b.add_gate(GateType::Dff, "q", {"d"});
  b.add_gate(GateType::Or, "y", {"q", "a"});
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist s = simplify(nl);
  EXPECT_EQ(s.dffs().size(), 1u);
  expect_equiv(nl, s, 16, 9);
}

TEST(Simplify, IdempotentOnCleanCircuits) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  SimplifyStats s1;
  const Netlist once = simplify(nl, &s1);
  SimplifyStats s2;
  const Netlist twice = simplify(once, &s2);
  EXPECT_EQ(once.num_gates(), twice.num_gates());
  EXPECT_EQ(s2.constants_folded, 0u);
  EXPECT_EQ(s2.gates_removed, 0u);
}

TEST(Simplify, EquivalentOnSyntheticCircuits) {
  for (const char* name : {"s344", "s382"}) {
    const Netlist nl = make_iscas89_like(name);
    const Netlist s = simplify(nl);
    expect_equiv(nl, s, 128, 11);
    EXPECT_LE(s.num_gates(), nl.num_gates() + 2);  // + tie cells at most
  }
}

TEST(Redundancy, RemovesTextbookRedundantGate) {
  // y = OR(AND(a, c), AND(a, NOT(c)))  ==  a; both AND gates are
  // redundant paths that collapse once a redundancy is tied.
  NetlistBuilder b("red");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Not, "nc", {"c"});
  b.add_gate(GateType::And, "t1", {"a", "c"});
  b.add_gate(GateType::And, "t2", {"a", "nc"});
  b.add_gate(GateType::Or, "y", {"t1", "t2"});
  // Consensus term AND(a, a) pattern is already minimal for this form;
  // instead use the classic redundant consensus: z = y OR AND(a, a) -- to
  // keep it simple, check a directly redundant wire:
  //   w = OR(a, AND(a, c))  ==  a   (absorption; AND(a,c) is redundant)
  b.add_gate(GateType::And, "ac", {"a", "c"});
  b.add_gate(GateType::Or, "w", {"a", "ac"});
  b.add_output("y");
  b.add_output("w");
  const Netlist nl = b.link();
  const RedundancyResult r = remove_redundancies(nl);
  EXPECT_GT(r.lines_tied, 0u);
  expect_equiv(nl, r.netlist, 32, 13);
}

TEST(Redundancy, IrredundantCircuitUntouched) {
  NetlistBuilder b("irr");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Xor, "y", {"a", "c"});
  b.add_output("y");
  const Netlist nl = b.link();
  const RedundancyResult r = remove_redundancies(nl);
  EXPECT_EQ(r.lines_tied, 0u);
  expect_equiv(nl, r.netlist, 8, 15);
}

TEST(Redundancy, ImprovesSyntheticTestability) {
  // Synthetic circuits are redundancy-heavy (DESIGN.md); removal must
  // shrink them while preserving the interface function.
  SynthProfile p;
  p.name = "redx";
  p.num_pi = 6;
  p.num_po = 4;
  p.num_ff = 4;
  p.num_gates = 60;
  p.seed = 321;
  const Netlist nl = generate_synthetic(p);
  const RedundancyResult r = remove_redundancies(nl);
  expect_equiv(nl, r.netlist, 256, 17);
  EXPECT_GT(r.rounds, 0u);
}

}  // namespace
}  // namespace scanpower
