#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

/// Checks functional equivalence of `a` and `b` (same PI/PO/DFF names) on
/// `vectors` random source assignments: PO values and DFF next states must
/// agree.
void expect_equivalent(const Netlist& a, const Netlist& b, int vectors,
                       std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  Simulator sa(a);
  Simulator sb(b);
  Rng rng(seed);
  for (int v = 0; v < vectors; ++v) {
    for (std::size_t k = 0; k < a.inputs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_input(a.inputs()[k], val);
      sb.set_input(b.find(a.gate_name(a.inputs()[k])), val);
    }
    for (std::size_t k = 0; k < a.dffs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_state(a.dffs()[k], val);
      sb.set_state(b.find(a.gate_name(a.dffs()[k])), val);
    }
    sa.eval_incremental();
    sb.eval_incremental();
    for (std::size_t k = 0; k < a.outputs().size(); ++k) {
      ASSERT_EQ(sa.value(a.outputs()[k]), sb.value(b.outputs()[k]))
          << "PO " << a.gate_name(a.outputs()[k]) << " vector " << v;
    }
    for (std::size_t k = 0; k < a.dffs().size(); ++k) {
      ASSERT_EQ(sa.next_state(a.dffs()[k]),
                sb.next_state(b.find(a.gate_name(a.dffs()[k]))))
          << "DFF " << a.gate_name(a.dffs()[k]) << " vector " << v;
    }
  }
}

TEST(Techmap, S27MapsAndStaysEquivalent) {
  const Netlist nl = make_s27();
  const Netlist mapped = map_to_nand_nor_inv(nl);
  EXPECT_TRUE(is_mapped(mapped));
  expect_equivalent(nl, mapped, 256, 11);
}

TEST(Techmap, MappedLibraryOnly) {
  const Netlist mapped = map_to_nand_nor_inv(make_s27());
  for (GateId id = 0; id < mapped.num_gates(); ++id) {
    const GateType t = mapped.type(id);
    EXPECT_TRUE(t == GateType::Input || t == GateType::Dff ||
                t == GateType::Not || t == GateType::Nand ||
                t == GateType::Nor)
        << gate_type_name(t);
  }
}

TEST(Techmap, XorDecomposition) {
  NetlistBuilder b("x");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Xor, "y", {"a", "b"});
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist mapped = map_to_nand_nor_inv(nl);
  EXPECT_TRUE(is_mapped(mapped));
  expect_equivalent(nl, mapped, 16, 3);
  // 2-input XOR = exactly 4 NAND2 cells.
  std::size_t nands = 0;
  for (GateId id = 0; id < mapped.num_gates(); ++id) {
    if (mapped.type(id) == GateType::Nand) ++nands;
  }
  EXPECT_EQ(nands, 4u);
}

TEST(Techmap, WideXnorDecomposition) {
  NetlistBuilder b("x");
  for (int i = 0; i < 5; ++i) b.add_input("i" + std::to_string(i));
  b.add_gate(GateType::Xnor, "y", {"i0", "i1", "i2", "i3", "i4"});
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist mapped = map_to_nand_nor_inv(nl);
  EXPECT_TRUE(is_mapped(mapped));
  expect_equivalent(nl, mapped, 64, 5);
}

TEST(Techmap, MuxDecomposition) {
  NetlistBuilder b("m");
  b.add_input("s");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Mux, "y", {"s", "a", "b"});
  b.add_output("y");
  const Netlist nl = b.link();
  const Netlist mapped = map_to_nand_nor_inv(nl);
  EXPECT_TRUE(is_mapped(mapped));
  expect_equivalent(nl, mapped, 16, 7);
}

TEST(Techmap, BuffersBypassed) {
  NetlistBuilder b("buf");
  b.add_input("a");
  b.add_gate(GateType::Buf, "x", {"a"});
  b.add_gate(GateType::Not, "y", {"x"});
  b.add_output("y");
  const Netlist mapped = map_to_nand_nor_inv(b.link());
  EXPECT_EQ(mapped.find("x"), kInvalidGate);  // buffer gone
  const GateId y = mapped.find("y");
  ASSERT_NE(y, kInvalidGate);
  EXPECT_EQ(mapped.fanins(y)[0], mapped.find("a"));
}

TEST(Techmap, BufferChainsCollapse) {
  NetlistBuilder b("bufchain");
  b.add_input("a");
  b.add_gate(GateType::Buf, "x1", {"a"});
  b.add_gate(GateType::Buf, "x2", {"x1"});
  b.add_gate(GateType::Not, "y", {"x2"});
  b.add_output("y");
  const Netlist mapped = map_to_nand_nor_inv(b.link());
  EXPECT_EQ(mapped.fanins(mapped.find("y"))[0], mapped.find("a"));
}

class TechmapWidthTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TechmapWidthTest, WideGatesSplitCorrectly) {
  const int width = std::get<0>(GetParam());
  const int max_w = std::get<1>(GetParam());
  for (GateType t : {GateType::And, GateType::Or, GateType::Nand, GateType::Nor}) {
    NetlistBuilder b("wide");
    std::vector<std::string> ins;
    for (int i = 0; i < width; ++i) {
      ins.push_back("i" + std::to_string(i));
      b.add_input(ins.back());
    }
    b.add_gate(t, "y", ins);
    b.add_output("y");
    const Netlist nl = b.link();
    TechmapOptions opts;
    opts.max_width = max_w;
    const Netlist mapped = map_to_nand_nor_inv(nl, opts);
    EXPECT_TRUE(is_mapped(mapped, opts))
        << gate_type_name(t) << width << " maxw=" << max_w;
    expect_equivalent(nl, mapped, 128, 17);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, TechmapWidthTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7, 9, 12),
                       ::testing::Values(2, 3, 4)));

TEST(Techmap, SyntheticCircuitEquivalence) {
  SynthProfile p;
  p.name = "tmx";
  p.num_pi = 6;
  p.num_po = 4;
  p.num_ff = 5;
  p.num_gates = 120;
  p.seed = 99;
  const Netlist nl = generate_synthetic(p);
  const Netlist mapped = map_to_nand_nor_inv(nl);
  EXPECT_TRUE(is_mapped(mapped));
  expect_equivalent(nl, mapped, 256, 23);
}

TEST(Techmap, PreservesInterfaceCounts) {
  const Netlist nl = make_iscas89_like("s344");
  const Netlist mapped = map_to_nand_nor_inv(nl);
  EXPECT_EQ(mapped.inputs().size(), nl.inputs().size());
  EXPECT_EQ(mapped.outputs().size(), nl.outputs().size());
  EXPECT_EQ(mapped.dffs().size(), nl.dffs().size());
}

TEST(Techmap, RejectsMaxWidthBelow2) {
  TechmapOptions opts;
  opts.max_width = 1;
  EXPECT_THROW(map_to_nand_nor_inv(make_s27(), opts), Error);
}

}  // namespace
}  // namespace scanpower
