// Telemetry: metrics registry, phase tracing, and the determinism contract.
//
// Four property groups:
//  1. Registry mechanics -- shard merge, gauges, histogram bucketing,
//     reset, and text/JSON serialization.
//  2. Counter determinism -- semantic counters are invariant across every
//     (block_words, num_threads) in {1,4}x{1,4}; work counters are
//     invariant across thread counts at fixed block_words. `_us` counters
//     and pool counters carry no guarantee and are excluded.
//  3. Exactness -- the registry deltas around one diagnose() equal the
//     DiagnosisResult::stats fields for that query (same single
//     measurement feeds both).
//  4. Tracing -- spans nest correctly per shard, the Chrome trace_event
//     export is well-formed JSON, and enabling telemetry never perturbs
//     rankings (byte-identical with a scope attached vs nullptr).
//
// Every test compiles (and passes, mostly as skips or zero-checks) under
// -DSCANPOWER_TELEMETRY=OFF -- that build's whole point is that this API
// surface still exists and costs nothing.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "benchgen/benchgen.hpp"
#include "core/session.hpp"
#include "diag/diagnose.hpp"
#include "diag/response.hpp"
#include "techmap/techmap.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace scanpower {
namespace {

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

/// Rankings must agree field-for-field (the bit-identical contract).
void expect_same_ranking(const DiagnosisResult& a, const DiagnosisResult& b,
                         const std::string& what) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size()) << what;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].fault_index, b.ranked[i].fault_index)
        << what << " rank " << i;
    EXPECT_EQ(a.ranked[i].tfsf, b.ranked[i].tfsf) << what << " rank " << i;
    EXPECT_EQ(a.ranked[i].tfsp, b.ranked[i].tfsp) << what << " rank " << i;
    EXPECT_EQ(a.ranked[i].tpsf, b.ranked[i].tpsf) << what << " rank " << i;
    EXPECT_EQ(a.ranked[i].dropped, b.ranked[i].dropped)
        << what << " rank " << i;
  }
}

/// Minimal JSON well-formedness scanner: balanced {}/[] outside strings,
/// with escape handling. Not a parser -- just enough to catch an unclosed
/// object or a raw quote in the trace export.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_str) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_str && stack.empty();
}

// ---------- registry mechanics ----------------------------------------------

TEST(MetricsRegistryTest, ShardsMergeIntoOneSum) {
  MetricsRegistry reg;
  // Same counter from several shards, including out-of-range ones (clamped).
  reg.add(0, CounterId::kDiagQueries, 3);
  reg.add(1, CounterId::kDiagQueries, 4);
  reg.add(63, CounterId::kDiagQueries, 5);
  reg.add(-1, CounterId::kDiagQueries, 1);   // clamps to shard 0
  reg.add(999, CounterId::kDiagQueries, 2);  // clamps to shard 63
  reg.set_gauge(GaugeId::kPoolWorkers, 7);
  reg.record_hist(HistId::kDiagnoseUs, 100);
  const MetricsSnapshot s = reg.snapshot();
  if constexpr (kTelemetryEnabled) {
    EXPECT_EQ(s.counter(CounterId::kDiagQueries), 15u);
    EXPECT_EQ(s.gauge(GaugeId::kPoolWorkers), 7);
    EXPECT_EQ(s.hist_count(HistId::kDiagnoseUs), 1u);
  } else {
    // Disabled build: every entry point is a no-op and snapshots are zero.
    EXPECT_EQ(s.counter(CounterId::kDiagQueries), 0u);
    EXPECT_EQ(s.gauge(GaugeId::kPoolWorkers), 0);
    EXPECT_EQ(s.hist_count(HistId::kDiagnoseUs), 0u);
  }
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry reg;
  reg.add(2, CounterId::kSweepCalls, 42);
  reg.set_gauge(GaugeId::kGoodBlocksCached, 9);
  reg.record_hist(HistId::kCompactDiagnoseUs, 5);
  reg.reset();
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.counter(CounterId::kSweepCalls), 0u);
  EXPECT_EQ(s.gauge(GaugeId::kGoodBlocksCached), 0);
  EXPECT_EQ(s.hist_count(HistId::kCompactDiagnoseUs), 0u);
}

TEST(MetricsRegistryTest, HistBucketsArePowersOfTwo) {
  // bucket i holds values with bit_width == i: 0 -> 0, 1 -> 1, [2,3] -> 2...
  EXPECT_EQ(MetricsRegistry::hist_bucket(0), 0u);
  EXPECT_EQ(MetricsRegistry::hist_bucket(1), 1u);
  EXPECT_EQ(MetricsRegistry::hist_bucket(2), 2u);
  EXPECT_EQ(MetricsRegistry::hist_bucket(3), 2u);
  EXPECT_EQ(MetricsRegistry::hist_bucket(4), 3u);
  EXPECT_EQ(MetricsRegistry::hist_bucket(1023), 10u);
  EXPECT_EQ(MetricsRegistry::hist_bucket(1024), 11u);
  // The last bucket absorbs everything >= 2^30 us.
  EXPECT_EQ(MetricsRegistry::hist_bucket(~0ull), kNumHistBuckets - 1);
}

TEST(MetricsSnapshotTest, TextAndJsonSerialization) {
  if (!kTelemetryEnabled) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry reg;
  reg.add(0, CounterId::kDiagQueries, 2);
  reg.add(1, CounterId::kSweepCalls, 10);
  reg.set_gauge(GaugeId::kPoolWorkers, 4);
  reg.record_hist(HistId::kDiagnoseUs, 1000);
  const MetricsSnapshot s = reg.snapshot();

  std::ostringstream text;
  s.write_text(text);
  EXPECT_NE(text.str().find(counter_name(CounterId::kDiagQueries)),
            std::string::npos);
  EXPECT_NE(text.str().find(counter_name(CounterId::kSweepCalls)),
            std::string::npos);
  EXPECT_NE(text.str().find(gauge_name(GaugeId::kPoolWorkers)),
            std::string::npos);
  // Zero-valued counters stay out of the dump.
  EXPECT_EQ(text.str().find(counter_name(CounterId::kXMaskBuilds)),
            std::string::npos);

  std::ostringstream json;
  JsonWriter w(json);
  w.begin_object();
  s.write_json(w);
  w.end_object();
  EXPECT_TRUE(json_balanced(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json.str().find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, EveryIdHasAName) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* n = counter_name(static_cast<CounterId>(i));
    ASSERT_NE(n, nullptr);
    EXPECT_GT(std::string(n).size(), 0u) << "counter " << i;
  }
  for (std::size_t i = 0; i < kNumGauges; ++i)
    EXPECT_GT(std::string(gauge_name(static_cast<GaugeId>(i))).size(), 0u);
  for (std::size_t i = 0; i < kNumHists; ++i)
    EXPECT_GT(std::string(hist_name(static_cast<HistId>(i))).size(), 0u);
}

// ---------- counter determinism across configurations ------------------------

struct ConfigRun {
  MetricsSnapshot snap;
  DiagnosisResult full;
  DiagnosisResult compact;
};

ConfigRun run_config(const Netlist& nl, const std::vector<TestPattern>& pats,
                     int block_words, int num_threads) {
  FlowOptions opts;
  opts.diag.block_words = block_words;
  opts.diag.num_threads = num_threads;
  opts.tpg.fault_sim.block_words = block_words;
  opts.tpg.fault_sim.num_threads = num_threads;
  ScanSession session(Netlist(nl), opts);
  session.bind_patterns(pats);
  const Fault defect = session.faults()[session.faults().size() / 3];
  ConfigRun out;
  out.full = session.diagnose(Evidence{session.inject(defect)});
  out.compact = session.diagnose(Evidence{session.inject_compacted(defect)});
  out.snap = session.metrics();
  return out;
}

/// Semantic counters: invariant across every configuration.
const CounterId kSemanticCounters[] = {
    CounterId::kDiagQueries,        CounterId::kDiagCandidates,
    CounterId::kDiagDropped,        CounterId::kDiagUnionFallbacks,
    CounterId::kDiagMultiplets,     CounterId::kCompactQueries,
    CounterId::kCompactCandidates,  CounterId::kConeCacheHits,
    CounterId::kConeCacheMisses,    CounterId::kGoodCacheBinds,
    CounterId::kXMaskBuilds,        CounterId::kSessionDiagnoseFull,
    CounterId::kSessionDiagnoseCompact, CounterId::kSessionBatches,
    CounterId::kSessionPatternBinds, CounterId::kSessionPatternBindHits,
    CounterId::kSessionCompactStateHits,
    CounterId::kSessionCompactStateMisses, CounterId::kSessionFlowRuns,
};

/// Work counters: invariant across thread counts at fixed block_words.
const CounterId kWorkCounters[] = {
    CounterId::kSweepCalls,        CounterId::kSweepUnexcited,
    CounterId::kSweepConeGates,    CounterId::kSweepActiveGates,
    CounterId::kSweepAborts,       CounterId::kGoodCacheBuiltBlocks,
    CounterId::kGoodCacheCachedReads, CounterId::kGoodCacheStreamedReads,
};

TEST(TelemetryDeterminismTest, CountersStableAcrossBlockWordsAndThreads) {
  if (!kTelemetryEnabled) GTEST_SKIP() << "telemetry compiled out";
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0x7e1e);

  struct Cfg { int w, t; };
  const Cfg cfgs[] = {{1, 1}, {1, 4}, {4, 1}, {4, 4}};
  std::vector<ConfigRun> runs;
  for (const Cfg& c : cfgs) runs.push_back(run_config(nl, pats, c.w, c.t));

  // The engine contract first: rankings bit-identical everywhere.
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_same_ranking(runs[0].full, runs[i].full, "full, config " +
                        std::to_string(i));
    expect_same_ranking(runs[0].compact, runs[i].compact, "compact, config " +
                        std::to_string(i));
  }

  // Semantic counters: equal across all four configurations.
  for (const CounterId id : kSemanticCounters) {
    for (std::size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[0].snap.counter(id), runs[i].snap.counter(id))
          << counter_name(id) << " differs at config (" << cfgs[i].w << ","
          << cfgs[i].t << ")";
    }
  }
  EXPECT_EQ(runs[0].snap.counter(CounterId::kDiagQueries), 1u);
  EXPECT_EQ(runs[0].snap.counter(CounterId::kCompactQueries), 1u);
  EXPECT_EQ(runs[0].snap.counter(CounterId::kSessionPatternBinds), 1u);

  // Work counters: equal across thread counts at fixed block_words.
  const std::pair<std::size_t, std::size_t> same_w[] = {{0, 1}, {2, 3}};
  for (const auto& [a, b] : same_w) {
    for (const CounterId id : kWorkCounters) {
      EXPECT_EQ(runs[a].snap.counter(id), runs[b].snap.counter(id))
          << counter_name(id) << " differs across threads at W="
          << cfgs[a].w;
    }
  }
  EXPECT_GT(runs[0].snap.counter(CounterId::kSweepCalls), 0u);
}

// ---------- registry <-> DiagnosisResult::stats exactness --------------------

TEST(TelemetryExactnessTest, RegistryDeltasMatchDiagnosisStats) {
  if (!kTelemetryEnabled) GTEST_SKIP() << "telemetry compiled out";
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0xbeef);
  FlowOptions opts;
  opts.diag.num_threads = 4;
  opts.tpg.fault_sim.num_threads = 4;
  ScanSession session(Netlist(nl), opts);
  session.bind_patterns(pats);
  const Fault defect = session.faults()[session.faults().size() / 4];
  const Evidence log{session.inject(defect)};

  const MetricsSnapshot before = session.metrics();
  const DiagnosisResult res = session.diagnose(log);
  const MetricsSnapshot after = session.metrics();
  const auto delta = [&](CounterId id) {
    return after.counter(id) - before.counter(id);
  };

  // One query; the same single measurement feeds the stats field, the
  // registry `_us` counter and (when enabled) the trace span.
  EXPECT_EQ(delta(CounterId::kDiagQueries), 1u);
  EXPECT_EQ(delta(CounterId::kDiagPruneUs), res.stats.prune_us);
  EXPECT_EQ(delta(CounterId::kDiagScoreUs), res.stats.score_us);
  EXPECT_EQ(delta(CounterId::kDiagCoverUs), res.stats.cover_us);
  EXPECT_EQ(delta(CounterId::kSweepCalls), res.stats.sweep_calls);
  EXPECT_EQ(delta(CounterId::kSweepAborts), res.stats.sweep_aborts);
  EXPECT_EQ(delta(CounterId::kConeCacheHits), res.stats.cone_cache_hits);
  EXPECT_EQ(delta(CounterId::kConeCacheMisses), res.stats.cone_cache_misses);
  EXPECT_EQ(delta(CounterId::kDiagCandidates), res.num_candidates);
  EXPECT_EQ(after.hist_count(HistId::kDiagnoseUs) -
                before.hist_count(HistId::kDiagnoseUs),
            1u);
  // Stats populate even without a registry attached, so they are never
  // all-zero on a non-trivial query.
  EXPECT_GT(res.stats.sweep_calls, 0u);
}

// ---------- tracing ----------------------------------------------------------

TEST(TraceRecorderTest, SpansNestAndExportIsWellFormed) {
  if (!kTelemetryEnabled) GTEST_SKIP() << "telemetry compiled out";
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 64, 0x77ace);
  ScanSession session(Netlist(nl), FlowOptions{});
  session.telemetry().trace.set_enabled(true);
  session.bind_patterns(pats);
  const Fault defect = session.faults()[session.faults().size() / 3];
  (void)session.diagnose(Evidence{session.inject(defect)});

  const std::vector<TraceEvent> evs = session.telemetry().trace.events();
  ASSERT_GE(evs.size(), 4u);  // session span + diagnose + prune + score

  const auto count = [&](const std::string& name) {
    std::size_t n = 0;
    for (const TraceEvent& e : evs) n += (name == e.name) ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count("session.diagnose_full"), 1u);
  EXPECT_EQ(count("diagnose"), 1u);
  EXPECT_EQ(count("prune"), 1u);
  EXPECT_EQ(count("score"), 1u);

  // Every nested span lies inside some span one level up on its shard.
  for (const TraceEvent& e : evs) {
    if (e.depth == 0) continue;
    bool enclosed = false;
    for (const TraceEvent& outer : evs) {
      if (outer.shard != e.shard || outer.depth != e.depth - 1) continue;
      if (outer.start_us <= e.start_us &&
          e.start_us + e.dur_us <= outer.start_us + outer.dur_us) {
        enclosed = true;
        break;
      }
    }
    EXPECT_TRUE(enclosed) << e.name << " (depth " << e.depth
                          << ") has no enclosing span";
  }

  std::ostringstream os;
  session.telemetry().trace.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(json_balanced(trace));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\""), std::string::npos);

  session.telemetry().trace.clear();
  EXPECT_TRUE(session.telemetry().trace.events().empty());
}

TEST(TraceRecorderTest, DisabledRecorderStaysEmpty) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 32, 0x50ff);
  ScanSession session(Netlist(nl), FlowOptions{});
  // Recording is off by default (and unconditionally off when compiled out).
  session.bind_patterns(pats);
  const Fault defect = session.faults()[0];
  (void)session.diagnose(Evidence{session.inject(defect)});
  EXPECT_TRUE(session.telemetry().trace.events().empty());
  if (!kTelemetryEnabled) {
    session.telemetry().trace.set_enabled(true);
    EXPECT_FALSE(session.telemetry().trace.enabled());
  }
}

// ---------- telemetry never perturbs results ---------------------------------

TEST(TelemetryNeutralityTest, RankingsIdenticalWithAndWithoutScope) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto pats = random_patterns(nl, 96, 0xacc3);
  const auto faults = collapse_faults(nl);
  ResponseCapture cap(nl, 4);
  const FailureLog log = cap.inject(pats, faults[faults.size() / 3]);
  ASSERT_FALSE(log.failures.empty());

  DiagnosisOptions off;
  off.telemetry = nullptr;
  Diagnoser plain(nl, off);
  const DiagnosisResult r_off = plain.diagnose(pats, faults, log);

  Telemetry telem;
  telem.trace.set_enabled(true);
  DiagnosisOptions on;
  on.telemetry = &telem;
  Diagnoser instrumented(nl, on);
  const DiagnosisResult r_on = instrumented.diagnose(pats, faults, log);

  expect_same_ranking(r_off, r_on, "telemetry on vs off");
  EXPECT_EQ(r_off.num_candidates, r_on.num_candidates);
  // The nullptr-scope run still timed itself into the result stats.
  if (kTelemetryEnabled) {
    EXPECT_EQ(r_off.stats.sweep_calls, r_on.stats.sweep_calls);
    EXPECT_GT(telem.metrics.snapshot().counter(CounterId::kDiagQueries), 0u);
    EXPECT_FALSE(telem.trace.events().empty());
  }
}

}  // namespace
}  // namespace scanpower
