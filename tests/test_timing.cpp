#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "techmap/techmap.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta.hpp"

namespace scanpower {
namespace {

Netlist chain3() {
  // a -> n1 -> n2 -> n3 (PO); b joins at n2.
  NetlistBuilder b("chain3");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Not, "n1", {"a"});
  b.add_gate(GateType::Nand, "n2", {"n1", "b"});
  b.add_gate(GateType::Not, "n3", {"n2"});
  b.add_output("n3");
  return b.link();
}

TEST(DelayModel, LoadGrowsWithFanout) {
  NetlistBuilder b("fan");
  b.add_input("a");
  b.add_gate(GateType::Not, "n1", {"a"});
  b.add_gate(GateType::Not, "u1", {"n1"});
  b.add_gate(GateType::Not, "u2", {"n1"});
  b.add_gate(GateType::Not, "u3", {"n1"});
  b.add_output("u1");
  const Netlist nl = b.link();
  const CapacitanceModel caps;
  EXPECT_GT(caps.load_ff(nl, nl.find("n1")), caps.load_ff(nl, nl.find("u2")));
  // Outputs carry the pad load.
  EXPECT_GT(caps.load_ff(nl, nl.find("u1")), caps.load_ff(nl, nl.find("u2")));
}

TEST(DelayModel, WiderCellsSlower) {
  const DelayModel m;
  EXPECT_GT(m.intrinsic_ps(GateType::Nand, 4), m.intrinsic_ps(GateType::Nand, 2));
  EXPECT_GT(m.intrinsic_ps(GateType::Nor, 3), m.intrinsic_ps(GateType::Nand, 3));
  EXPECT_GT(m.drive_res_ps_per_ff(GateType::Nor, 4),
            m.drive_res_ps_per_ff(GateType::Nor, 2));
}

TEST(DelayModel, LoadVectorMatchesPerGate) {
  const Netlist nl = make_s27();
  const CapacitanceModel caps;
  const auto loads = caps.load_vector(nl);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    EXPECT_DOUBLE_EQ(loads[id], caps.load_ff(nl, id));
  }
}

TEST(Sta, ArrivalMonotoneAlongPaths) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!is_combinational(nl.type(id))) continue;
    for (GateId f : nl.fanins(id)) {
      EXPECT_GT(sta.arrival_ps(id), sta.arrival_ps(f));
    }
  }
}

TEST(Sta, SlackNonNegativeAndZeroOnCriticalPath) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    EXPECT_GE(sta.slack_ps(id), -1e-9) << nl.gate_name(id);
  }
  const auto path = sta.critical_path();
  ASSERT_FALSE(path.empty());
  for (GateId id : path) {
    EXPECT_NEAR(sta.slack_ps(id), 0.0, 1e-6) << nl.gate_name(id);
  }
  // The path ends at the critical delay.
  EXPECT_NEAR(sta.arrival_ps(path.back()), sta.critical_delay_ps(), 1e-9);
}

TEST(Sta, CriticalPathIsConnected) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  const auto path = sta.critical_path();
  ASSERT_GE(path.size(), 2u);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto& fans = nl.fanins(path[i]);
    EXPECT_NE(std::find(fans.begin(), fans.end(), path[i - 1]), fans.end())
        << "path edge " << i;
  }
}

TEST(Sta, DffArrivalIsClkToQ) {
  const Netlist nl = make_s27();
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  for (GateId dff : nl.dffs()) {
    EXPECT_DOUBLE_EQ(sta.arrival_ps(dff), model.clk_to_q_ps());
  }
  for (GateId pi : nl.inputs()) {
    EXPECT_DOUBLE_EQ(sta.arrival_ps(pi), 0.0);
  }
}

TEST(Sta, HandChainDelayAddsUp) {
  const Netlist nl = chain3();
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  const double d1 = model.gate_delay_ps(nl, nl.find("n1"));
  const double d2 = model.gate_delay_ps(nl, nl.find("n2"));
  const double d3 = model.gate_delay_ps(nl, nl.find("n3"));
  EXPECT_NEAR(sta.critical_delay_ps(), d1 + d2 + d3, 1e-9);
  // b arrives directly at n2: slack(b) = d1 (the NOT it skips).
  EXPECT_NEAR(sta.slack_ps(nl.find("b")), d1, 1e-9);
}

TEST(Sta, ExtraSourceDelayFormula) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  const double d0 = sta.critical_delay_ps();
  for (GateId dff : nl.dffs()) {
    const double slack = sta.slack_ps(dff);
    // Below the slack: unchanged. Above: grows by the excess.
    EXPECT_NEAR(sta.critical_delay_with_extra_source_delay(dff, slack * 0.5),
                d0, 1e-6);
    EXPECT_NEAR(sta.critical_delay_with_extra_source_delay(dff, slack + 10.0),
                d0 + 10.0, 1e-6);
  }
}

TEST(Sta, RequiredNeverBelowArrivalOnFeasiblePaths) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s444"));
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    EXPECT_GE(sta.required_ps(id) + 1e-9, sta.arrival_ps(id));
  }
}

}  // namespace
}  // namespace scanpower

namespace scanpower {
namespace {

TEST(DelayModel, MuxDelayMonotoneInLoad) {
  const DelayModel m;
  EXPECT_LT(m.mux_delay_ps(1.0), m.mux_delay_ps(5.0));
  EXPECT_GT(m.mux_delay_ps(0.0), 0.0);
}

TEST(Sta, CriticalDelayPositiveForAllProfiles) {
  const DelayModel model;
  for (const char* name : {"s344", "s510", "s641"}) {
    const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(name));
    const TimingAnalysis sta(nl, model);
    EXPECT_GT(sta.critical_delay_ps(), model.clk_to_q_ps()) << name;
  }
}

TEST(Sta, ExtraDelayZeroIsNoop) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const DelayModel model;
  const TimingAnalysis sta(nl, model);
  for (GateId dff : nl.dffs()) {
    EXPECT_DOUBLE_EQ(sta.critical_delay_with_extra_source_delay(dff, 0.0),
                     sta.critical_delay_ps());
  }
}

}  // namespace
}  // namespace scanpower
