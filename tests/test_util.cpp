#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace scanpower {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitDropsEmptyFields) {
  const auto parts = split("a,b,,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitMultipleDelims) {
  const auto parts = split("a, b;c", ",; ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, ToUpper) { EXPECT_EQ(to_upper("nAnd2"), "NAND2"); }

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("scanpower", "scan"));
  EXPECT_FALSE(starts_with("scan", "scanpower"));
  EXPECT_TRUE(ends_with("file.bench", ".bench"));
  EXPECT_FALSE(ends_with("x", ".bench"));
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
}

TEST(ErrorHandling, SpCheckThrows) {
  EXPECT_THROW(SP_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(SP_CHECK(true, "fine"));
}

TEST(ErrorHandling, ParseErrorCarriesLocation) {
  try {
    throw ParseError("f.bench", 12, "bad token");
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "f.bench");
    EXPECT_EQ(e.line(), 12);
    EXPECT_NE(std::string(e.what()).find("bad token"), std::string::npos);
  }
}

// ---------- logging ----------------------------------------------------------

/// Installs a capturing sink and restores level + default sink on exit.
struct LogCapture {
  std::vector<std::pair<LogLevel, std::string>> lines;
  LogLevel saved = log_level();
  LogCapture() {
    set_log_sink([this](LogLevel lv, std::string_view msg) {
      lines.emplace_back(lv, std::string(msg));
    });
  }
  ~LogCapture() {
    set_log_sink({});  // empty function restores the stderr default
    set_log_level(saved);
  }
};

TEST(Logging, SinkReceivesOnlyLevelPassingMessages) {
  LogCapture cap;
  set_log_level(LogLevel::Warn);
  SP_LOG_DEBUG("nope");
  SP_LOG_INFO("nope");
  SP_LOG_WARN("w1");
  SP_LOG_ERROR("e1");
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_EQ(cap.lines[0], (std::pair{LogLevel::Warn, std::string("w1")}));
  EXPECT_EQ(cap.lines[1], (std::pair{LogLevel::Error, std::string("e1")}));

  set_log_level(LogLevel::Debug);
  SP_LOG_DEBUG("d1");
  ASSERT_EQ(cap.lines.size(), 3u);
  EXPECT_EQ(cap.lines[2].second, "d1");

  set_log_level(LogLevel::Off);
  SP_LOG_ERROR("nope");
  EXPECT_EQ(cap.lines.size(), 3u);
}

TEST(Logging, MacroArgumentsAreLazy) {
  LogCapture cap;
  set_log_level(LogLevel::Warn);
  int evaluated = 0;
  auto expensive = [&] {
    ++evaluated;
    return std::string("built");
  };
  SP_LOG_DEBUG(expensive());  // below threshold: must not build the string
  EXPECT_EQ(evaluated, 0);
  SP_LOG_WARN(expensive());
  EXPECT_EQ(evaluated, 1);
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0].second, "built");
}

TEST(Logging, LogEnabledTracksThreshold) {
  LogCapture cap;
  set_log_level(LogLevel::Info);
  EXPECT_FALSE(log_enabled(LogLevel::Debug));
  EXPECT_TRUE(log_enabled(LogLevel::Info));
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  set_log_level(LogLevel::Off);
  EXPECT_FALSE(log_enabled(LogLevel::Error));
}

}  // namespace
}  // namespace scanpower
