#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "netlist/verilog_io.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

constexpr const char* kTinyModule = R"(
// tiny test module
module tiny (a, b, y);
  input a, b;
  output y;
  wire w1; /* internal */
  nand g1 (w1, a, b);
  not g2 (y, w1);
endmodule
)";

TEST(Verilog, ParsesTinyModule) {
  const Netlist nl = parse_verilog_string(kTinyModule, "tiny.v");
  EXPECT_EQ(nl.name(), "tiny");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.type(nl.find("w1")), GateType::Nand);
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Not);
}

TEST(Verilog, InstanceNamesOptional) {
  const Netlist nl = parse_verilog_string(
      "module m (a, y);\n input a;\n output y;\n not (y, a);\nendmodule\n",
      "m.v");
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Not);
}

TEST(Verilog, DffPositionalAndNamed) {
  const Netlist nl = parse_verilog_string(R"(
module ff (d_in, q1, q2);
  input d_in;
  output q1, q2;
  dff f1 (q1, d_in);
  dff f2 (.d(d_in), .q(q2));
endmodule
)",
                                          "ff.v");
  EXPECT_EQ(nl.dffs().size(), 2u);
  EXPECT_EQ(nl.fanins(nl.find("q1"))[0], nl.find("d_in"));
  EXPECT_EQ(nl.fanins(nl.find("q2"))[0], nl.find("d_in"));
}

TEST(Verilog, AssignAliasAndConstants) {
  const Netlist nl = parse_verilog_string(R"(
module c (a, y0, y1, ya);
  input a;
  output y0, y1, ya;
  assign y0 = 1'b0;
  assign y1 = 1'b1;
  assign ya = a;
endmodule
)",
                                          "c.v");
  EXPECT_EQ(nl.type(nl.find("y0")), GateType::Const0);
  EXPECT_EQ(nl.type(nl.find("y1")), GateType::Const1);
  EXPECT_EQ(nl.type(nl.find("ya")), GateType::Buf);
}

TEST(Verilog, ConstPortsCreateTieCells) {
  const Netlist nl = parse_verilog_string(R"(
module c (a, y);
  input a;
  output y;
  nand g (y, a, 1'b1);
endmodule
)",
                                          "c.v");
  Simulator sim(nl);
  sim.set_input(nl.find("a"), Logic::One);
  sim.eval();
  EXPECT_EQ(sim.value(nl.find("y")), Logic::Zero);
}

TEST(Verilog, Errors) {
  EXPECT_THROW(parse_verilog_string("module m (", "e.v"), Error);
  EXPECT_THROW(parse_verilog_string(
                   "module m (a);\n input [3:0] a;\nendmodule\n", "e.v"),
               ParseError);
  EXPECT_THROW(
      parse_verilog_string(
          "module m (a, y);\n input a;\n output y;\n frob g (y, a);\nendmodule\n",
          "e.v"),
      ParseError);
  EXPECT_THROW(parse_verilog_string(
                   "module m (y);\n output y;\n assign y = 2'b10;\nendmodule\n",
                   "e.v"),
               ParseError);
  // Missing endmodule.
  EXPECT_THROW(parse_verilog_string("module m (a);\n input a;\n", "e.v"),
               Error);
}

/// Random-simulation equivalence at the named interface.
void expect_equiv(const Netlist& a, const Netlist& b, int vectors,
                  std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  Simulator sa(a);
  Simulator sb(b);
  Rng rng(seed);
  for (int v = 0; v < vectors; ++v) {
    for (std::size_t k = 0; k < a.inputs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_input(a.inputs()[k], val);
      sb.set_input(b.find(a.gate_name(a.inputs()[k])), val);
    }
    for (std::size_t k = 0; k < a.dffs().size(); ++k) {
      const Logic val = from_bool(rng.next_bool());
      sa.set_state(a.dffs()[k], val);
      sb.set_state(b.find(a.gate_name(a.dffs()[k])), val);
    }
    sa.eval_incremental();
    sb.eval_incremental();
    for (std::size_t k = 0; k < a.outputs().size(); ++k) {
      ASSERT_EQ(sa.value(a.outputs()[k]),
                sb.value(b.find(a.gate_name(a.outputs()[k]))));
    }
    for (std::size_t k = 0; k < a.dffs().size(); ++k) {
      ASSERT_EQ(sa.next_state(a.dffs()[k]),
                sb.next_state(b.find(a.gate_name(a.dffs()[k]))));
    }
  }
}

TEST(Verilog, RoundTripS27) {
  const Netlist nl = make_s27();
  const Netlist back = parse_verilog_string(write_verilog_string(nl), "rt.v");
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  expect_equiv(nl, back, 200, 77);
}

TEST(Verilog, RoundTripMappedSynthetic) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const Netlist back = parse_verilog_string(write_verilog_string(nl), "rt.v");
  expect_equiv(nl, back, 128, 79);
}

TEST(Verilog, RoundTripMuxAndConsts) {
  const Netlist nl = parse_verilog_string(R"(
module mx (s, a, b, y);
  input s, a, b;
  output y;
  wire t;
  mux m0 (t, s, a, b);
  nand g (y, t, 1'b1);
endmodule
)",
                                          "mx.v");
  const Netlist back = parse_verilog_string(write_verilog_string(nl), "rt.v");
  expect_equiv(nl, back, 16, 81);
}

}  // namespace
}  // namespace scanpower
